package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestServer stands up the full HTTP stack over a small caveman graph.
func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	reg := NewRegistry(2, false)
	if err := reg.RegisterSpec("test", "caveman:cliques=16,k=12"); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(reg, Config{ProcBudget: 4, CacheSize: 64})
	srv := NewServer(eng)
	srv.Logf = t.Logf
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, eng
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServerCluster(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/cluster",
		`{"graph":"test","algo":"prnibble","seeds":[0,12,24]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var cr ClusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if cr.Vertices != 192 || len(cr.Results) != 3 {
		t.Fatalf("response = %+v", cr)
	}
	for _, r := range cr.Results {
		if r.Size == 0 || len(r.Members) != r.Size {
			t.Fatalf("result = %+v", r)
		}
	}
	if cr.Aggregate.Queries != 3 || cr.Aggregate.ElapsedMS <= 0 {
		t.Fatalf("aggregate = %+v", cr.Aggregate)
	}
}

func TestServerClusterErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown graph", `{"graph":"nope","seeds":[0]}`, http.StatusNotFound},
		{"malformed json", `{"graph":`, http.StatusBadRequest},
		{"unknown field", `{"graph":"test","seeds":[0],"wat":1}`, http.StatusBadRequest},
		{"empty seeds", `{"graph":"test","seeds":[]}`, http.StatusBadRequest},
		{"bad algo", `{"graph":"test","seeds":[0],"algo":"bfs"}`, http.StatusBadRequest},
		{"seed out of range", `{"graph":"test","seeds":[4096]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/cluster", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body = %s", tc.name, body)
		}
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/cluster status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

func TestServerNCP(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ncp",
		`{"graph":"test","seeds":5,"alphas":[0.01],"epsilons":[1e-6],"envelope":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var nr NCPResponse
	if err := json.Unmarshal(body, &nr); err != nil {
		t.Fatal(err)
	}
	if len(nr.Points) == 0 {
		t.Fatalf("no NCP points: %s", body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/ncp", `{"graph":"nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph status = %d, want 404", resp.StatusCode)
	}
}

func TestServerGraphsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var gl struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(gl.Graphs) != 1 || gl.Graphs[0].Name != "test" || gl.Graphs[0].Loaded {
		t.Fatalf("graphs = %+v, want one unloaded entry \"test\"", gl.Graphs)
	}

	postJSON(t, ts.URL+"/v1/cluster", `{"graph":"test","seeds":[0]}`)
	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&gl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !gl.Graphs[0].Loaded || gl.Graphs[0].Vertices != 192 {
		t.Fatalf("after query: %+v, want loaded with 192 vertices", gl.Graphs[0])
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}
}

func TestServerCacheHitCounter(t *testing.T) {
	ts, eng := newTestServer(t)
	const q = `{"graph":"test","algo":"nibble","seeds":[7]}`
	resp, body := postJSON(t, ts.URL+"/v1/cluster", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, body)
	}
	ran := eng.Stats().Diffusions

	resp, body = postJSON(t, ts.URL+"/v1/cluster", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp.StatusCode, body)
	}
	var cr ClusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Results[0].Cached {
		t.Fatal("repeated query not served from cache")
	}
	st := eng.Stats()
	if st.Diffusions != ran {
		t.Fatalf("repeated query re-ran the diffusion: %d -> %d", ran, st.Diffusions)
	}
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}

	// The stats endpoint reports the same counters.
	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var got EngineStats
	if err := json.NewDecoder(hresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.CacheHits != 1 || got.Diffusions != ran {
		t.Fatalf("/v1/stats = %+v", got)
	}
}

func TestServerExpvar(t *testing.T) {
	ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/v1/cluster", `{"graph":"test","seeds":[1]}`)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var vars struct {
		LGC EngineStats `json:"lgc"`
	}
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("expvar body not JSON: %v", err)
	}
	// The lgc var aggregates every engine the process has created, so
	// other tests' queries count too; this engine contributed at least one.
	if vars.LGC.Queries < 1 || vars.LGC.Diffusions < 1 {
		t.Fatalf("expvar lgc = %+v, want counters > 0", vars.LGC)
	}
}

func TestServerCloseUnpublishes(t *testing.T) {
	reg := NewRegistry(1, false)
	eng := NewEngine(reg, Config{ProcBudget: 1})
	srv := NewServer(eng)
	found := func() bool {
		expMu.Lock()
		defer expMu.Unlock()
		for _, e := range expEngines {
			if e == eng {
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("NewServer did not publish the engine")
	}
	srv.Close()
	if found() {
		t.Fatal("Close left the engine in the expvar export")
	}
	srv.Close() // idempotent
}

func TestServerConcurrentClients(t *testing.T) {
	ts, eng := newTestServer(t)
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body string
			switch i % 3 {
			case 0: // same cacheable query from many clients
				body = `{"graph":"test","seeds":[0]}`
			case 1:
				body = fmt.Sprintf(`{"graph":"test","algo":"hkpr","seeds":[%d]}`, (i*12)%192)
			case 2:
				body = fmt.Sprintf(`{"graph":"test","seeds":[%d,%d],"seed_set":true}`, i%192, (i+5)%192)
			}
			resp, err := http.Post(ts.URL+"/v1/cluster", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var cr ClusterResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if len(cr.Results) == 0 || cr.Results[0].Size == 0 {
				errs <- fmt.Errorf("client %d: empty result", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := eng.Stats(); st.Queries != clients || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want %d queries and 0 in flight", st, clients)
	}
	// All concurrent clients shared one graph load.
	if eng.Registry().Loads() != 1 {
		t.Fatalf("graph loaded %d times, want 1", eng.Registry().Loads())
	}
}

// TestServerWorkspaceStats checks the per-graph workspace pool shows up in
// /v1/stats: diffusions acquire and release workspaces, repeats hit the
// pool, and forced dense runs recycle graph-sized bytes.
func TestServerWorkspaceStats(t *testing.T) {
	ts, eng := newTestServer(t)
	// no_cache forces every request to actually run a diffusion; dense mode
	// forces graph-sized arenas so a pool hit has bytes to recycle.
	const q = `{"graph":"test","algo":"prnibble","seeds":[0],"no_cache":true,"params":{"frontier":"dense"}}`
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/cluster", q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	ws := eng.Stats().Workspace
	if ws.Pools != 1 {
		t.Fatalf("pools = %d, want 1", ws.Pools)
	}
	if ws.Acquires < 3 || ws.Acquires != ws.Releases {
		t.Fatalf("acquires=%d releases=%d, want >= 3 and equal", ws.Acquires, ws.Releases)
	}
	if ws.Hits < 1 || ws.Hits+ws.Misses != ws.Acquires {
		t.Fatalf("hits=%d misses=%d acquires=%d", ws.Hits, ws.Misses, ws.Acquires)
	}
	if ws.BytesRecycled <= 0 {
		t.Fatalf("bytes_recycled = %d, want > 0", ws.BytesRecycled)
	}

	// And the wire endpoint carries the same nested object.
	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var got EngineStats
	if err := json.NewDecoder(hresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Workspace != ws {
		t.Fatalf("/v1/stats workspace = %+v, want %+v", got.Workspace, ws)
	}
}
