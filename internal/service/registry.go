package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"parcluster/internal/api"
	"parcluster/internal/gen"
	"parcluster/internal/graph"
	"parcluster/internal/workspace"
)

// Source produces a graph on demand. procs is the worker count to use for
// the (parallel) load or generation.
type Source func(procs int) (*graph.CSR, error)

// GraphInfo describes one registry entry for listings.
type GraphInfo = api.GraphInfo

// Registry is a concurrency-safe catalog of graphs. Sources are registered
// under a name and materialized lazily on first Get; concurrent Gets for
// the same name share a single load (singleflight), and a successful load
// is kept forever. A failed load is not kept: the error is reported to
// everyone waiting on that load, and the next Get retries the source.
//
// Every loaded graph is wrapped in a graph.Versioned overlay, so it can
// mutate through ingest batches (Versioned) while queries run against
// pinned epoch snapshots (Acquire). The CSR handed out for any one epoch
// is immutable; mutation only ever produces new snapshots.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Source
	loads   map[string]*load
	procs   int
	dynamic bool
	// dynamicCount / dynamicLimit bound how many distinct on-the-fly specs
	// clients can materialize: loaded graphs are pinned forever, so without
	// a cap dynamic mode would let a client grow the process without bound.
	dynamicCount int
	dynamicLimit int

	loadCount atomic.Int64 // completed successful loads, for tests and stats
}

// maxDynamicGraphs caps the number of distinct client-supplied generator
// specs a dynamic registry will materialize. Operator-registered graphs
// are not counted.
const maxDynamicGraphs = 64

// load is one singleflight slot: the first Get for a name creates it and
// runs the source; everyone else waits on done. A successful load wraps the
// graph in its mutation overlay (vg) and owns one workspace pool per vertex
// universe the graph has had: pools are sized to a universe, and ingest can
// grow the universe, so a grown graph gets a fresh pool while snapshots of
// older epochs keep borrowing from theirs.
type load struct {
	done chan struct{}
	g    *graph.CSR // the base CSR as originally loaded (epoch 0)
	vg   *graph.Versioned
	err  error

	poolMu sync.Mutex
	pools  map[int]*workspace.Pool // universe size -> pool
}

// finish installs the overlay and the initial workspace pool for a
// successfully sourced graph.
func (l *load) finish(procs int, g *graph.CSR) {
	l.g = g
	l.vg = graph.NewVersioned(procs, g)
	l.pools = map[int]*workspace.Pool{g.NumVertices(): workspace.NewPool(g.NumVertices())}
}

// pool returns the workspace pool for a vertex universe of size n, creating
// it on first use after the universe grows.
func (l *load) pool(n int) *workspace.Pool {
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	p, ok := l.pools[n]
	if !ok {
		p = workspace.NewPool(n)
		l.pools[n] = p
	}
	return p
}

// PinnedGraph is one epoch of one graph, pinned for the lifetime of a
// request: G is the immutable CSR of that epoch, Pool the workspace pool
// sized to its universe, and Epoch the version the request must report.
// Release the pin — exactly once; it is idempotent — when the request
// finishes, so leak detectors (Versioned.Pins) can prove quiescence.
type PinnedGraph struct {
	G     *graph.CSR
	Epoch uint64
	Pool  *workspace.Pool
	snap  *graph.Snapshot
	once  sync.Once
}

// Release returns the pin. Idempotent.
func (p *PinnedGraph) Release() { p.once.Do(p.snap.Release) }

// NewRegistry returns an empty registry. procs is the worker count passed
// to sources (<= 0 = all cores). If dynamic is true, a Get for an
// unregistered name is interpreted as a generator spec (e.g.
// "caveman:cliques=16,k=12" or a Table 2 stand-in name) and generated on
// the fly; the materialized graph is then cached like any other entry.
func NewRegistry(procs int, dynamic bool) *Registry {
	return &Registry{
		sources:      make(map[string]Source),
		loads:        make(map[string]*load),
		procs:        procs,
		dynamic:      dynamic,
		dynamicLimit: maxDynamicGraphs,
	}
}

// Register adds a named source. Re-registering a name replaces the source
// but does not invalidate an already-loaded graph.
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = src
}

// RegisterGraph adds an already-materialized graph.
func (r *Registry) RegisterGraph(name string, g *graph.CSR) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = func(int) (*graph.CSR, error) { return g, nil }
	l := &load{done: closedChan}
	l.finish(r.procs, g)
	r.loads[name] = l
}

// RegisterFile adds a graph file source (.adj, .bin, or edge list; see
// graph.LoadFile). The file is read on first query.
func (r *Registry) RegisterFile(name, path string) {
	r.Register(name, func(p int) (*graph.CSR, error) { return graph.LoadFile(p, path) })
}

// RegisterSpec adds a generator-spec source ("barbell:k=20", "soc-LJ", ...).
// The spec is parsed now (so typos fail at registration time) but generated
// on first query.
func (r *Registry) RegisterSpec(name, spec string) error {
	s, err := gen.ParseSpec(spec)
	if err != nil {
		return err
	}
	r.Register(name, func(p int) (*graph.CSR, error) { return gen.Generate(p, s) })
	return nil
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Get resolves name to its current graph snapshot, loading it if
// necessary. Concurrent calls for the same unloaded name perform one load
// between them. The context only bounds this caller's wait — an in-flight
// load itself is never abandoned, since another waiter may still want it.
func (r *Registry) Get(ctx context.Context, name string) (*graph.CSR, error) {
	g, _, err := r.GetWithWorkspace(ctx, name)
	return g, err
}

// GetWithWorkspace is Get returning, alongside the graph, the workspace
// pool the registry owns for its universe — the pool diffusions against
// this graph should borrow their graph-sized scratch state from. The
// returned CSR is one immutable epoch snapshot; callers that must hold a
// single epoch across a whole request (and report which) use Acquire.
func (r *Registry) GetWithWorkspace(ctx context.Context, name string) (*graph.CSR, *workspace.Pool, error) {
	pin, err := r.Acquire(ctx, name)
	if err != nil {
		return nil, nil, err
	}
	// The CSR and pool outlive the pin (both are immutable / registry-owned);
	// only epoch accounting needs the pin held, and this caller reports none.
	defer pin.Release()
	return pin.G, pin.Pool, nil
}

// Acquire resolves name and pins its current epoch snapshot: the returned
// CSR is immutable and stays this epoch's edge set no matter how many
// ingest batches or compactions land while the request runs. The caller
// must Release the pin when done with the graph.
func (r *Registry) Acquire(ctx context.Context, name string) (*PinnedGraph, error) {
	l, err := r.resolve(ctx, name)
	if err != nil {
		return nil, err
	}
	snap := l.vg.Snapshot()
	g := snap.Graph()
	return &PinnedGraph{G: g, Epoch: snap.Epoch(), Pool: l.pool(g.NumVertices()), snap: snap}, nil
}

// Versioned resolves name to its mutation overlay — the handle ingest
// batches apply through and the compactor folds.
func (r *Registry) Versioned(ctx context.Context, name string) (*graph.Versioned, error) {
	l, err := r.resolve(ctx, name)
	if err != nil {
		return nil, err
	}
	return l.vg, nil
}

// resolve returns the completed load slot for name, running or joining the
// singleflight load as needed.
func (r *Registry) resolve(ctx context.Context, name string) (*load, error) {
	r.mu.Lock()
	if l, ok := r.loads[name]; ok {
		r.mu.Unlock()
		return l.wait(ctx)
	}
	src, ok := r.sources[name]
	isDynamic := false
	if !ok {
		if !r.dynamic {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
		}
		if r.dynamicCount >= r.dynamicLimit {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: dynamic graph limit reached (%d specs materialized); register graphs at startup instead", ErrBadRequest, r.dynamicLimit)
		}
		spec, err := gen.ParseSpec(name)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
		}
		isDynamic = true
		src = func(p int) (*graph.CSR, error) {
			g, err := gen.Generate(p, spec)
			if err != nil {
				// An unparseable or unknown recipe is "no such graph", not a
				// server fault.
				return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
			}
			return g, nil
		}
	}
	l := &load{done: make(chan struct{})}
	r.loads[name] = l
	if isDynamic {
		r.dynamicCount++
	}
	r.mu.Unlock()

	g, err := src(r.procs)
	if err != nil {
		l.err = err
		r.mu.Lock()
		delete(r.loads, name) // let the next Get retry
		if isDynamic {
			r.dynamicCount--
		}
		r.mu.Unlock()
	} else {
		l.finish(r.procs, g)
		r.loadCount.Add(1)
	}
	close(l.done)
	return l, l.err
}

func (l *load) wait(ctx context.Context) (*load, error) {
	select {
	case <-l.done:
		return l, l.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Loads returns the number of successful graph loads performed — with
// singleflight dedup this stays at one per distinct graph no matter how
// many concurrent queries raced on it.
func (r *Registry) Loads() int64 { return r.loadCount.Load() }

// WorkspaceStats aggregates the counters of every per-graph workspace pool
// the registry owns (loads still in flight, which have no pool yet, are
// skipped).
func (r *Registry) WorkspaceStats() api.WorkspaceStats {
	var pools []*workspace.Pool
	for _, l := range r.completedLoads() {
		l.poolMu.Lock()
		for _, p := range l.pools {
			pools = append(pools, p)
		}
		l.poolMu.Unlock()
	}
	var out api.WorkspaceStats
	for _, p := range pools {
		s := p.Stats()
		out.Add(api.WorkspaceStats{
			Pools:               1,
			Acquires:            s.Acquires,
			Hits:                s.Hits,
			Misses:              s.Misses,
			Releases:            s.Releases,
			BytesRecycled:       s.BytesRecycled,
			ResultAcquires:      s.ResultAcquires,
			ResultHits:          s.ResultHits,
			ResultMisses:        s.ResultMisses,
			ResultReleases:      s.ResultReleases,
			ResultBytesRecycled: s.ResultBytesRecycled,
			BatchAcquires:       s.BatchAcquires,
			BatchHits:           s.BatchHits,
			BatchMisses:         s.BatchMisses,
			BatchReleases:       s.BatchReleases,
			BatchBytesRecycled:  s.BatchBytesRecycled,
		})
	}
	return out
}

// completedLoads snapshots every load that has finished successfully.
func (r *Registry) completedLoads() []*load {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*load, 0, len(r.loads))
	for _, l := range r.loads {
		select {
		case <-l.done:
			if l.err == nil {
				out = append(out, l)
			}
		default: // load in flight
		}
	}
	return out
}

// versioned snapshots the overlay of every loaded graph, keyed by name —
// the compactor's work list.
func (r *Registry) versioned() map[string]*graph.Versioned {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*graph.Versioned, len(r.loads))
	for name, l := range r.loads {
		select {
		case <-l.done:
			if l.err == nil {
				out[name] = l.vg
			}
		default:
		}
	}
	return out
}

// IngestStats sums the mutation counters of every loaded graph's overlay.
func (r *Registry) IngestStats() api.IngestStats {
	var out api.IngestStats
	for _, l := range r.completedLoads() {
		st := l.vg.Stats()
		out.Edges += int64(st.Edges)
		out.Deletes += int64(st.Deletes)
		out.Batches += int64(st.Batches)
		out.Compactions += int64(st.Compactions)
		out.Pending += int64(st.Pending)
		out.Epoch += st.Epoch
		out.Pins += l.vg.Pins()
	}
	return out
}

// List describes every registered or materialized graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.sources)+len(r.loads))
	var out []GraphInfo
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		info := GraphInfo{Name: name}
		if l, ok := r.loads[name]; ok {
			select {
			case <-l.done:
				if l.err == nil {
					st := l.vg.Stats()
					info.Loaded = true
					info.Vertices = st.Vertices
					// Exact once compacted; between compactions the listing
					// reports the base edge count with Pending uncompacted
					// delta records alongside.
					info.Edges = st.BaseEdges
					info.Epoch = st.Epoch
					info.Pending = st.Pending
				}
			default: // load in flight; report as not yet loaded
			}
		}
		out = append(out, info)
	}
	for name := range r.sources {
		add(name)
	}
	for name := range r.loads {
		add(name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
