package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parcluster/internal/api"
	"parcluster/internal/gen"
	"parcluster/internal/graph"
	"parcluster/internal/wal"
	"parcluster/internal/workspace"
)

// Source produces a graph on demand. procs is the worker count to use for
// the (parallel) load or generation. A source may return either
// representation — the heap *graph.CSR or the memory-mapped *graph.CCSR —
// and the registry serves both identically.
type Source func(procs int) (graph.Graph, error)

// GraphInfo describes one registry entry for listings.
type GraphInfo = api.GraphInfo

// Registry is a concurrency-safe catalog of graphs. Sources are registered
// under a name and materialized lazily on first Get; concurrent Gets for
// the same name share a single load (singleflight), and a successful load
// is kept forever. A failed load is not kept: the error is reported to
// everyone waiting on that load, and the next Get retries the source.
//
// Every loaded graph is wrapped in a graph.Versioned overlay, so it can
// mutate through ingest batches (Versioned) while queries run against
// pinned epoch snapshots (Acquire). The CSR handed out for any one epoch
// is immutable; mutation only ever produces new snapshots.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Source
	loads   map[string]*load
	procs   int
	dynamic bool
	walCfg  *WALConfig
	// dynamicCount / dynamicLimit bound how many distinct on-the-fly specs
	// clients can materialize: loaded graphs are pinned forever, so without
	// a cap dynamic mode would let a client grow the process without bound.
	dynamicCount int
	dynamicLimit int

	loadCount atomic.Int64 // completed successful loads, for tests and stats
}

// maxDynamicGraphs caps the number of distinct client-supplied generator
// specs a dynamic registry will materialize. Operator-registered graphs
// are not counted.
const maxDynamicGraphs = 64

// load is one singleflight slot: the first Get for a name creates it and
// runs the source; everyone else waits on done. A successful load wraps the
// graph in its mutation overlay (vg) and owns one workspace pool per vertex
// universe pinned snapshots can still borrow from: pools are sized to a
// universe, and ingest can grow the universe, so a grown graph gets a fresh
// pool while snapshots of older epochs keep borrowing from theirs — and a
// pool is retired once no pin can reach it (its universe is no longer
// current and its pin count hit zero), so repeated growth cannot
// accumulate graph-sized pools without bound.
type load struct {
	done chan struct{}
	g    graph.Graph // the base graph as originally loaded (epoch 0)
	vg   *graph.Versioned
	wal  *wal.Log // nil unless the registry persists this graph
	err  error
	// loadMS is how long materializing the graph took (source read or
	// generation, plus WAL checkpoint + replay when durable).
	loadMS int64

	poolMu   sync.Mutex
	pools    map[int]*workspace.Pool // universe size -> pool
	poolPins map[int]int             // universe size -> outstanding PinnedGraph pins
}

// finish installs the overlay and the initial workspace pool for a
// successfully sourced graph.
func (l *load) finish(procs int, g graph.Graph) {
	l.finishVersioned(graph.NewVersioned(procs, g), g)
}

// finishVersioned is finish for an overlay built elsewhere (the WAL
// recovery path, where the overlay may start at a checkpoint epoch). The
// initial pool is sized to the overlay's current universe, which after a
// replay can be larger than the sourced base.
func (l *load) finishVersioned(vg *graph.Versioned, g graph.Graph) {
	l.g = g
	l.vg = vg
	n := vg.Stats().Vertices
	l.pools = map[int]*workspace.Pool{n: workspace.NewPool(n)}
	l.poolPins = make(map[int]int)
}

// acquirePool returns the workspace pool for a vertex universe of size n —
// creating it on first use after the universe grows — and counts one pin
// against it. Every acquire must be balanced by one releasePool.
func (l *load) acquirePool(n int) *workspace.Pool {
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	p, ok := l.pools[n]
	if !ok {
		p = workspace.NewPool(n)
		l.pools[n] = p
	}
	l.poolPins[n]++
	return p
}

// releasePool drops one pin from universe n's pool and sweeps: any pool
// whose universe is no longer the overlay's current size and has zero pins
// is unreachable — no existing PinnedGraph borrows from it and no future
// Acquire will return it — so it is deleted and its arenas become garbage.
// The current universe's pool always survives, pinned or not.
func (l *load) releasePool(n int) {
	cur := l.vg.Stats().Vertices
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	if l.poolPins[n]--; l.poolPins[n] <= 0 {
		delete(l.poolPins, n)
	}
	for size := range l.pools {
		if size != cur && l.poolPins[size] == 0 {
			delete(l.pools, size)
		}
	}
}

// PinnedGraph is one epoch of one graph, pinned for the lifetime of a
// request: G is the immutable CSR of that epoch, Pool the workspace pool
// sized to its universe, and Epoch the version the request must report.
// Release the pin — exactly once; it is idempotent — when the request
// finishes, so leak detectors (Versioned.Pins) can prove quiescence.
type PinnedGraph struct {
	G       graph.Graph
	Epoch   uint64
	Pool    *workspace.Pool
	release func()
	once    sync.Once
}

// Release returns the pin. Idempotent.
func (p *PinnedGraph) Release() { p.once.Do(p.release) }

// WALConfig enables per-graph write-ahead logging: every graph the
// registry materializes gets a segmented log under Dir (one subdirectory
// per graph name), ingest batches commit to it before their epoch becomes
// visible, and a load replays it to recover the exact pre-crash epoch.
type WALConfig struct {
	// Dir is the root directory for the per-graph logs.
	Dir string
	// SegmentBytes is the log segment rotation threshold (<= 0 = the wal
	// package default).
	SegmentBytes int64
	// Policy and Interval select the fsync policy (see wal.ParseSyncPolicy).
	Policy   wal.SyncPolicy
	Interval time.Duration
}

// EnableWAL turns on durable ingest for every graph this registry loads
// from now on. Call it before the first load: already-materialized graphs
// keep running without a log. Eagerly-registered graphs (RegisterGraph)
// registered after this call are re-routed through the lazy load path so
// their logs replay on first use.
func (r *Registry) EnableWAL(cfg WALConfig) error {
	if cfg.Dir == "" {
		return errors.New("service: WAL dir must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walCfg = &cfg
	return nil
}

// graphWALDir maps a graph name to its per-graph log directory, escaping
// anything outside [A-Za-z0-9._-] (and the all-dots names that would walk
// the directory tree) as %XX so distinct names cannot collide or escape
// the WAL root.
func graphWALDir(root, name string) string {
	var b []byte
	allDots := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b = append(b, c)
		default:
			b = append(b, fmt.Sprintf("%%%02X", c)...)
		}
		if c != '.' {
			allDots = false
		}
	}
	if len(b) == 0 || allDots {
		// "" / "." / ".." would name nothing or walk the tree; hex-escape
		// every byte instead. A raw '%' never survives the normal path, so
		// these cannot collide with an unescaped name.
		b = b[:0]
		for i := 0; i < len(name); i++ {
			b = append(b, fmt.Sprintf("%%%02X", name[i])...)
		}
		if len(b) == 0 {
			b = append(b, '%')
		}
	}
	return filepath.Join(root, string(b))
}

// NewRegistry returns an empty registry. procs is the worker count passed
// to sources (<= 0 = all cores). If dynamic is true, a Get for an
// unregistered name is interpreted as a generator spec (e.g.
// "caveman:cliques=16,k=12" or a Table 2 stand-in name) and generated on
// the fly; the materialized graph is then cached like any other entry.
func NewRegistry(procs int, dynamic bool) *Registry {
	return &Registry{
		sources:      make(map[string]Source),
		loads:        make(map[string]*load),
		procs:        procs,
		dynamic:      dynamic,
		dynamicLimit: maxDynamicGraphs,
	}
}

// Register adds a named source. Re-registering a name replaces the source
// but does not invalidate an already-loaded graph.
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = src
}

// RegisterGraph adds an already-materialized graph. With a WAL enabled the
// graph still materializes through the lazy load path on first use, so its
// log replays on top of g instead of being skipped.
func (r *Registry) RegisterGraph(name string, g graph.Graph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = func(int) (graph.Graph, error) { return g, nil }
	if r.walCfg != nil {
		return
	}
	l := &load{done: closedChan}
	l.finish(r.procs, g)
	r.loads[name] = l
}

// RegisterFile adds a graph file source (.adj, .bin, .lgz, or edge list;
// see graph.Load). The file is read — or, for .lgz, memory-mapped and
// header-validated only — on first query.
func (r *Registry) RegisterFile(name, path string) {
	r.RegisterFileFormat(name, path, "")
}

// RegisterFileFormat is RegisterFile with an explicit on-disk format
// ("adj", "bin", "edges", "lgz"; "" or "auto" detects from the extension).
func (r *Registry) RegisterFileFormat(name, path, format string) {
	r.Register(name, func(p int) (graph.Graph, error) { return graph.LoadFormat(p, path, format) })
}

// RegisterSpec adds a generator-spec source ("barbell:k=20", "soc-LJ", ...).
// The spec is parsed now (so typos fail at registration time) but generated
// on first query.
func (r *Registry) RegisterSpec(name, spec string) error {
	s, err := gen.ParseSpec(spec)
	if err != nil {
		return err
	}
	r.Register(name, func(p int) (graph.Graph, error) { return gen.Generate(p, s) })
	return nil
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Get resolves name to its current graph snapshot, loading it if
// necessary. Concurrent calls for the same unloaded name perform one load
// between them. The context only bounds this caller's wait — an in-flight
// load itself is never abandoned, since another waiter may still want it.
func (r *Registry) Get(ctx context.Context, name string) (graph.Graph, error) {
	g, _, err := r.GetWithWorkspace(ctx, name)
	return g, err
}

// GetWithWorkspace is Get returning, alongside the graph, the workspace
// pool the registry owns for its universe — the pool diffusions against
// this graph should borrow their graph-sized scratch state from. The
// returned CSR is one immutable epoch snapshot; callers that must hold a
// single epoch across a whole request (and report which) use Acquire.
func (r *Registry) GetWithWorkspace(ctx context.Context, name string) (graph.Graph, *workspace.Pool, error) {
	pin, err := r.Acquire(ctx, name)
	if err != nil {
		return nil, nil, err
	}
	// The CSR and pool outlive the pin (both are immutable / registry-owned);
	// only epoch accounting needs the pin held, and this caller reports none.
	defer pin.Release()
	return pin.G, pin.Pool, nil
}

// Acquire resolves name and pins its current epoch snapshot: the returned
// CSR is immutable and stays this epoch's edge set no matter how many
// ingest batches or compactions land while the request runs. The caller
// must Release the pin when done with the graph.
func (r *Registry) Acquire(ctx context.Context, name string) (*PinnedGraph, error) {
	l, err := r.resolve(ctx, name)
	if err != nil {
		return nil, err
	}
	snap := l.vg.Snapshot()
	g := snap.Graph()
	n := g.NumVertices()
	return &PinnedGraph{G: g, Epoch: snap.Epoch(), Pool: l.acquirePool(n), release: func() {
		snap.Release()
		l.releasePool(n)
	}}, nil
}

// Versioned resolves name to its mutation overlay — the handle ingest
// batches apply through and the compactor folds.
func (r *Registry) Versioned(ctx context.Context, name string) (*graph.Versioned, error) {
	l, err := r.resolve(ctx, name)
	if err != nil {
		return nil, err
	}
	return l.vg, nil
}

// resolve returns the completed load slot for name, running or joining the
// singleflight load as needed.
func (r *Registry) resolve(ctx context.Context, name string) (*load, error) {
	r.mu.Lock()
	if l, ok := r.loads[name]; ok {
		r.mu.Unlock()
		return l.wait(ctx)
	}
	src, ok := r.sources[name]
	isDynamic := false
	if !ok {
		if !r.dynamic {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
		}
		if r.dynamicCount >= r.dynamicLimit {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: dynamic graph limit reached (%d specs materialized); register graphs at startup instead", ErrBadRequest, r.dynamicLimit)
		}
		spec, err := gen.ParseSpec(name)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
		}
		isDynamic = true
		src = func(p int) (graph.Graph, error) {
			g, err := gen.Generate(p, spec)
			if err != nil {
				// An unparseable or unknown recipe is "no such graph", not a
				// server fault.
				return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
			}
			return g, nil
		}
	}
	l := &load{done: make(chan struct{})}
	r.loads[name] = l
	if isDynamic {
		r.dynamicCount++
	}
	cfg := r.walCfg
	r.mu.Unlock()

	var err error
	start := time.Now()
	if cfg == nil {
		var g graph.Graph
		if g, err = src(r.procs); err == nil {
			l.finish(r.procs, g)
		}
	} else {
		err = r.loadDurable(l, name, src, cfg)
	}
	if err != nil {
		l.err = err
		r.mu.Lock()
		delete(r.loads, name) // let the next Get retry
		if isDynamic {
			r.dynamicCount--
		}
		r.mu.Unlock()
	} else {
		l.loadMS = time.Since(start).Milliseconds()
		r.loadCount.Add(1)
		st := l.vg.Stats()
		slog.Default().Info("graph loaded", "graph", name,
			"vertices", st.Vertices, "edges", st.BaseEdges,
			"format", graph.Format(l.g), "load_ms", l.loadMS)
	}
	close(l.done)
	return l, l.err
}

// loadDurable materializes one graph with its write-ahead log attached:
// open (and repair) the log, build the base — from the newest checkpoint
// when one exists, else from the source — replay every batch the log holds
// beyond that base, asserting each lands on exactly the epoch it was
// logged at, and only then install the commit hook that routes all future
// Apply calls through the log. A recovered overlay is therefore
// bit-identical to the never-crashed one: same base construction, same
// canonicalized batches in the same order.
func (r *Registry) loadDurable(l *load, name string, src Source, cfg *WALConfig) error {
	lg, err := wal.Open(graphWALDir(cfg.Dir, name), wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Policy:       cfg.Policy,
		Interval:     cfg.Interval,
	})
	if err != nil {
		return err
	}
	fail := func(err error) error {
		lg.Close()
		return err
	}
	var base graph.Graph
	var vg *graph.Versioned
	if ckpt := lg.CheckpointEpoch(); ckpt > 0 {
		rd, err := lg.CheckpointReader()
		if err != nil {
			return fail(err)
		}
		if base, err = graph.ReadBinary(rd); err != nil {
			return fail(fmt.Errorf("service: reading WAL checkpoint for %q: %w", name, err))
		}
		vg = graph.NewVersionedAt(r.procs, base, ckpt)
	} else {
		if base, err = src(r.procs); err != nil {
			return fail(err)
		}
		vg = graph.NewVersioned(r.procs, base)
	}
	if err := lg.Replay(func(b *wal.Batch) error {
		st, err := vg.Apply(toEdges(b.Ins), toEdges(b.Del), int(b.Vertices))
		if err != nil {
			return err
		}
		if st.Epoch != b.Epoch {
			return fmt.Errorf("replayed batch landed on epoch %d, log says %d", st.Epoch, b.Epoch)
		}
		return nil
	}); err != nil {
		return fail(fmt.Errorf("service: replaying WAL for %q: %w", name, err))
	}
	vg.SetCommit(func(ins, del []graph.Edge, vertices int, epoch uint64) error {
		return lg.Append(&wal.Batch{
			Epoch:    epoch,
			Vertices: uint64(vertices),
			Ins:      toPairs(ins),
			Del:      toPairs(del),
		})
	})
	l.wal = lg
	l.finishVersioned(vg, base)
	return nil
}

// toPairs converts canonicalized edges to the WAL's wire pairs.
func toPairs(edges []graph.Edge) [][2]uint32 {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]uint32, len(edges))
	for i, e := range edges {
		out[i] = [2]uint32{e.U, e.V}
	}
	return out
}

// Close flushes and closes every per-graph write-ahead log. Call it after
// the engine has drained; the registry must not be used afterwards.
func (r *Registry) Close() error {
	var errs []error
	for _, l := range r.completedLoads() {
		if l.wal != nil {
			errs = append(errs, l.wal.Close())
		}
	}
	return errors.Join(errs...)
}

// SyncWAL fsyncs every per-graph log with unsynced records, so a drained
// engine holds zero un-fsynced WAL records under any fsync policy.
func (r *Registry) SyncWAL() error {
	var errs []error
	for _, l := range r.completedLoads() {
		if l.wal != nil {
			errs = append(errs, l.wal.Sync())
		}
	}
	return errors.Join(errs...)
}

// WalStats aggregates the write-ahead-log counters across every loaded
// graph. Enabled reflects configuration even when nothing has loaded yet.
func (r *Registry) WalStats() api.WalStats {
	r.mu.Lock()
	out := api.WalStats{Enabled: r.walCfg != nil}
	r.mu.Unlock()
	for _, l := range r.completedLoads() {
		if l.wal == nil {
			continue
		}
		st := l.wal.Stats()
		out.Add(api.WalStats{
			Appends:         st.Appends,
			Bytes:           st.AppendedBytes,
			Fsyncs:          st.Fsyncs,
			ReplayedBatches: st.ReplayedBatches,
			ReplayMS:        st.ReplayMS,
			Segments:        int64(st.Segments),
			Checkpoints:     st.Checkpoints,
		})
	}
	return out
}

func (l *load) wait(ctx context.Context) (*load, error) {
	select {
	case <-l.done:
		return l, l.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Loads returns the number of successful graph loads performed — with
// singleflight dedup this stays at one per distinct graph no matter how
// many concurrent queries raced on it.
func (r *Registry) Loads() int64 { return r.loadCount.Load() }

// WorkspaceStats aggregates the counters of every per-graph workspace pool
// the registry owns (loads still in flight, which have no pool yet, are
// skipped).
func (r *Registry) WorkspaceStats() api.WorkspaceStats {
	var pools []*workspace.Pool
	for _, l := range r.completedLoads() {
		l.poolMu.Lock()
		for _, p := range l.pools {
			pools = append(pools, p)
		}
		l.poolMu.Unlock()
	}
	var out api.WorkspaceStats
	for _, p := range pools {
		s := p.Stats()
		out.Add(api.WorkspaceStats{
			Pools:               1,
			Acquires:            s.Acquires,
			Hits:                s.Hits,
			Misses:              s.Misses,
			Releases:            s.Releases,
			BytesRecycled:       s.BytesRecycled,
			ResultAcquires:      s.ResultAcquires,
			ResultHits:          s.ResultHits,
			ResultMisses:        s.ResultMisses,
			ResultReleases:      s.ResultReleases,
			ResultBytesRecycled: s.ResultBytesRecycled,
			BatchAcquires:       s.BatchAcquires,
			BatchHits:           s.BatchHits,
			BatchMisses:         s.BatchMisses,
			BatchReleases:       s.BatchReleases,
			BatchBytesRecycled:  s.BatchBytesRecycled,
		})
	}
	return out
}

// completedLoads snapshots every load that has finished successfully.
func (r *Registry) completedLoads() []*load {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*load, 0, len(r.loads))
	for _, l := range r.loads {
		select {
		case <-l.done:
			if l.err == nil {
				out = append(out, l)
			}
		default: // load in flight
		}
	}
	return out
}

// versioned snapshots every loaded graph's slot, keyed by name — the
// compactor's work list, carrying both the overlay to fold and the WAL to
// checkpoint.
func (r *Registry) versioned() map[string]*load {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*load, len(r.loads))
	for name, l := range r.loads {
		select {
		case <-l.done:
			if l.err == nil {
				out[name] = l
			}
		default:
		}
	}
	return out
}

// IngestStats sums the mutation counters of every loaded graph's overlay.
func (r *Registry) IngestStats() api.IngestStats {
	var out api.IngestStats
	for _, l := range r.completedLoads() {
		st := l.vg.Stats()
		out.Edges += int64(st.Edges)
		out.Deletes += int64(st.Deletes)
		out.Batches += int64(st.Batches)
		out.Compactions += int64(st.Compactions)
		out.Pending += int64(st.Pending)
		out.Epoch += st.Epoch
		out.Pins += l.vg.Pins()
	}
	return out
}

// List describes every registered or materialized graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.sources)+len(r.loads))
	var out []GraphInfo
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		info := GraphInfo{Name: name}
		if l, ok := r.loads[name]; ok {
			select {
			case <-l.done:
				if l.err == nil {
					st := l.vg.Stats()
					info.Loaded = true
					info.Vertices = st.Vertices
					// Exact once compacted; between compactions the listing
					// reports the base edge count with Pending uncompacted
					// delta records alongside.
					info.Edges = st.BaseEdges
					info.Epoch = st.Epoch
					info.Pending = st.Pending
					info.Format = graph.Format(l.g)
					info.LoadMS = l.loadMS
					if c, ok := l.g.(*graph.CCSR); ok {
						info.MappedBytes = c.MappedBytes()
						info.ResidentHint = c.ResidentBytes()
					}
				}
			default: // load in flight; report as not yet loaded
			}
		}
		out = append(out, info)
	}
	for name := range r.sources {
		add(name)
	}
	for name := range r.loads {
		add(name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
