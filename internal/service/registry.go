package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"parcluster/internal/api"
	"parcluster/internal/gen"
	"parcluster/internal/graph"
	"parcluster/internal/workspace"
)

// Source produces a graph on demand. procs is the worker count to use for
// the (parallel) load or generation.
type Source func(procs int) (*graph.CSR, error)

// GraphInfo describes one registry entry for listings.
type GraphInfo = api.GraphInfo

// Registry is a concurrency-safe catalog of graphs. Sources are registered
// under a name and materialized lazily on first Get; concurrent Gets for
// the same name share a single load (singleflight), and a successful load
// is kept forever — graphs are immutable, so every query receives the same
// *graph.CSR. A failed load is not kept: the error is reported to everyone
// waiting on that load, and the next Get retries the source.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Source
	loads   map[string]*load
	procs   int
	dynamic bool
	// dynamicCount / dynamicLimit bound how many distinct on-the-fly specs
	// clients can materialize: loaded graphs are pinned forever, so without
	// a cap dynamic mode would let a client grow the process without bound.
	dynamicCount int
	dynamicLimit int

	loadCount atomic.Int64 // completed successful loads, for tests and stats
}

// maxDynamicGraphs caps the number of distinct client-supplied generator
// specs a dynamic registry will materialize. Operator-registered graphs
// are not counted.
const maxDynamicGraphs = 64

// load is one singleflight slot: the first Get for a name creates it and
// runs the source; everyone else waits on done. A successful load also
// receives the graph's workspace pool (ws), sized to its vertex universe:
// the registry is the natural owner because a pool is exactly as immutable
// and long-lived as the graph it serves.
type load struct {
	done chan struct{}
	g    *graph.CSR
	ws   *workspace.Pool
	err  error
}

// NewRegistry returns an empty registry. procs is the worker count passed
// to sources (<= 0 = all cores). If dynamic is true, a Get for an
// unregistered name is interpreted as a generator spec (e.g.
// "caveman:cliques=16,k=12" or a Table 2 stand-in name) and generated on
// the fly; the materialized graph is then cached like any other entry.
func NewRegistry(procs int, dynamic bool) *Registry {
	return &Registry{
		sources:      make(map[string]Source),
		loads:        make(map[string]*load),
		procs:        procs,
		dynamic:      dynamic,
		dynamicLimit: maxDynamicGraphs,
	}
}

// Register adds a named source. Re-registering a name replaces the source
// but does not invalidate an already-loaded graph.
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = src
}

// RegisterGraph adds an already-materialized graph.
func (r *Registry) RegisterGraph(name string, g *graph.CSR) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = func(int) (*graph.CSR, error) { return g, nil }
	r.loads[name] = &load{done: closedChan, g: g, ws: workspace.NewPool(g.NumVertices())}
}

// RegisterFile adds a graph file source (.adj, .bin, or edge list; see
// graph.LoadFile). The file is read on first query.
func (r *Registry) RegisterFile(name, path string) {
	r.Register(name, func(p int) (*graph.CSR, error) { return graph.LoadFile(p, path) })
}

// RegisterSpec adds a generator-spec source ("barbell:k=20", "soc-LJ", ...).
// The spec is parsed now (so typos fail at registration time) but generated
// on first query.
func (r *Registry) RegisterSpec(name, spec string) error {
	s, err := gen.ParseSpec(spec)
	if err != nil {
		return err
	}
	r.Register(name, func(p int) (*graph.CSR, error) { return gen.Generate(p, s) })
	return nil
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Get resolves name to its graph, loading it if necessary. Concurrent
// calls for the same unloaded name perform one load between them. The
// context only bounds this caller's wait — an in-flight load itself is
// never abandoned, since another waiter may still want it.
func (r *Registry) Get(ctx context.Context, name string) (*graph.CSR, error) {
	g, _, err := r.GetWithWorkspace(ctx, name)
	return g, err
}

// GetWithWorkspace is Get returning, alongside the graph, the per-graph
// workspace pool the registry owns for it — the pool diffusions against
// this graph should borrow their graph-sized scratch state from.
func (r *Registry) GetWithWorkspace(ctx context.Context, name string) (*graph.CSR, *workspace.Pool, error) {
	r.mu.Lock()
	if l, ok := r.loads[name]; ok {
		r.mu.Unlock()
		return l.wait(ctx)
	}
	src, ok := r.sources[name]
	isDynamic := false
	if !ok {
		if !r.dynamic {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
		}
		if r.dynamicCount >= r.dynamicLimit {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: dynamic graph limit reached (%d specs materialized); register graphs at startup instead", ErrBadRequest, r.dynamicLimit)
		}
		spec, err := gen.ParseSpec(name)
		if err != nil {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
		}
		isDynamic = true
		src = func(p int) (*graph.CSR, error) {
			g, err := gen.Generate(p, spec)
			if err != nil {
				// An unparseable or unknown recipe is "no such graph", not a
				// server fault.
				return nil, fmt.Errorf("%w: %q (%v)", ErrUnknownGraph, name, err)
			}
			return g, nil
		}
	}
	l := &load{done: make(chan struct{})}
	r.loads[name] = l
	if isDynamic {
		r.dynamicCount++
	}
	r.mu.Unlock()

	l.g, l.err = src(r.procs)
	if l.err != nil {
		r.mu.Lock()
		delete(r.loads, name) // let the next Get retry
		if isDynamic {
			r.dynamicCount--
		}
		r.mu.Unlock()
	} else {
		l.ws = workspace.NewPool(l.g.NumVertices())
		r.loadCount.Add(1)
	}
	close(l.done)
	return l.g, l.ws, l.err
}

func (l *load) wait(ctx context.Context) (*graph.CSR, *workspace.Pool, error) {
	select {
	case <-l.done:
		return l.g, l.ws, l.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// Loads returns the number of successful graph loads performed — with
// singleflight dedup this stays at one per distinct graph no matter how
// many concurrent queries raced on it.
func (r *Registry) Loads() int64 { return r.loadCount.Load() }

// WorkspaceStats aggregates the counters of every per-graph workspace pool
// the registry owns (loads still in flight, which have no pool yet, are
// skipped).
func (r *Registry) WorkspaceStats() api.WorkspaceStats {
	r.mu.Lock()
	pools := make([]*workspace.Pool, 0, len(r.loads))
	for _, l := range r.loads {
		select {
		case <-l.done:
			if l.ws != nil {
				pools = append(pools, l.ws)
			}
		default:
		}
	}
	r.mu.Unlock()
	var out api.WorkspaceStats
	for _, p := range pools {
		s := p.Stats()
		out.Add(api.WorkspaceStats{
			Pools:               1,
			Acquires:            s.Acquires,
			Hits:                s.Hits,
			Misses:              s.Misses,
			Releases:            s.Releases,
			BytesRecycled:       s.BytesRecycled,
			ResultAcquires:      s.ResultAcquires,
			ResultHits:          s.ResultHits,
			ResultMisses:        s.ResultMisses,
			ResultReleases:      s.ResultReleases,
			ResultBytesRecycled: s.ResultBytesRecycled,
			BatchAcquires:       s.BatchAcquires,
			BatchHits:           s.BatchHits,
			BatchMisses:         s.BatchMisses,
			BatchReleases:       s.BatchReleases,
			BatchBytesRecycled:  s.BatchBytesRecycled,
		})
	}
	return out
}

// List describes every registered or materialized graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.sources)+len(r.loads))
	var out []GraphInfo
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		info := GraphInfo{Name: name}
		if l, ok := r.loads[name]; ok {
			select {
			case <-l.done:
				if l.err == nil {
					info.Loaded = true
					info.Vertices = l.g.NumVertices()
					info.Edges = l.g.NumEdges()
				}
			default: // load in flight; report as not yet loaded
			}
		}
		out = append(out, info)
	}
	for name := range r.sources {
		add(name)
	}
	for name := range r.loads {
		add(name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
