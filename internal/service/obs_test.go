package service

// obs_test.go covers the observability surface end to end over a real
// engine: the /metrics exposition (lint-clean, histograms present per
// algo/class), the /v1/trace ring endpoints (spans + per-round kernel
// events), and the request-ID / Server-Timing headers.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parcluster/internal/api"
	"parcluster/internal/obs"
)

func TestMetricsEndpoint(t *testing.T) {
	ts, eng := newTestServer(t)
	// Generate some traffic first so the histograms have observations.
	resp, body := postJSON(t, ts.URL+"/v1/cluster",
		`{"graph":"test","algo":"prnibble","seeds":[0,12,24]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status = %d, body = %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != api.MetricsContentType {
		t.Fatalf("metrics content-type = %q", ct)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintExposition(bytes.NewReader(text)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"lgc_queries_total 1",
		"lgc_sched_admitted_total{class=\"interactive\"}",
		`lgc_request_duration_seconds_count{algo="prnibble",class="interactive",outcome="ok"} 1`,
		`lgc_kernel_seconds_count{algo="prnibble"} 3`, // one per seed
		`lgc_queue_wait_seconds_count{class="interactive"} 3`,
		"go_goroutines",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}

	// The exported registry is the one behind the endpoint.
	if eng.Metrics() == nil {
		t.Fatal("Engine.Metrics() = nil")
	}
	if got := http.StatusMethodNotAllowed; func() int {
		r, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		return r.StatusCode
	}() != got {
		t.Fatalf("POST /metrics not rejected with %d", got)
	}
}

func TestTraceEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/cluster",
		`{"graph":"test","algo":"prnibble","seeds":[0,12]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status = %d, body = %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(api.HeaderRequestID)
	if len(id) != 16 {
		t.Fatalf("X-Request-Id = %q, want a generated 16-char id", id)
	}
	timing := resp.Header.Get(api.HeaderServerTiming)
	for _, span := range []string{"admission", "graph_load", "queue_wait", "kernel", "sweep"} {
		if !strings.Contains(timing, span+";dur=") {
			t.Errorf("Server-Timing missing %s: %q", span, timing)
		}
	}

	tresp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", tresp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(tresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || snap.Endpoint != "POST /v1/cluster" {
		t.Fatalf("snapshot identity = %+v", snap)
	}
	if snap.Graph != "test" || snap.Algo != "prnibble" || snap.Class != "interactive" || snap.Outcome != "ok" {
		t.Fatalf("snapshot annotations = %+v", snap)
	}
	if len(snap.KernelRounds) == 0 {
		t.Fatal("trace has no per-round kernel events")
	}
	units := map[int]bool{}
	for _, kr := range snap.KernelRounds {
		units[kr.Unit] = true
		if kr.Frontier <= 0 || kr.Edges < 0 {
			t.Fatalf("kernel round = %+v", kr)
		}
	}
	if !units[0] || !units[1] {
		t.Fatalf("kernel rounds cover units %v, want both units", units)
	}

	// The listing shows the trace, newest first.
	lresp, err := http.Get(ts.URL + "/v1/trace?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) == 0 || listing.Traces[0].ID != id {
		t.Fatalf("listing = %+v, want %s first", listing.Traces, id)
	}
	if listing.Traces[0].Rounds != len(snap.KernelRounds) {
		t.Fatalf("summary rounds = %d, snapshot = %d", listing.Traces[0].Rounds, len(snap.KernelRounds))
	}

	for path, status := range map[string]int{
		"/v1/trace/unknown-id": http.StatusNotFound,
		"/v1/trace/a/b":        http.StatusNotFound,
		"/v1/trace?limit=0":    http.StatusBadRequest,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != status {
			t.Errorf("GET %s = %d, want %d", path, r.StatusCode, status)
		}
	}
}

func TestRequestIDEchoed(t *testing.T) {
	ts, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cluster",
		strings.NewReader(`{"graph":"test","seeds":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderRequestID, "my-test-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(api.HeaderRequestID); got != "my-test-id-42" {
		t.Fatalf("X-Request-Id = %q, want the client's id echoed", got)
	}
	// The trace is keyed by the client's id.
	r, err := http.Get(ts.URL + "/v1/trace/my-test-id-42")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace by client id = %d", r.StatusCode)
	}
}

func TestUntracedEndpointsStayOutOfRing(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.Header.Get(api.HeaderRequestID) == "" {
			t.Fatal("untraced endpoint lost its request id")
		}
	}
	lresp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 0 {
		t.Fatalf("stats reads landed in the trace ring: %+v", listing.Traces)
	}
}

func TestTracingDisabled(t *testing.T) {
	reg := NewRegistry(2, false)
	if err := reg.RegisterSpec("test", "caveman:cliques=16,k=12"); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(reg, Config{ProcBudget: 4, CacheSize: 64, TraceRing: -1})
	srv := NewServer(eng)
	srv.Logf = t.Logf
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	resp, body := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"test","seeds":[0]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status = %d, body = %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(api.HeaderRequestID)
	if id == "" {
		t.Fatal("disabled tracing dropped the request id")
	}
	r, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing disabled = %d, want 404", r.StatusCode)
	}
}

func TestStreamFlushHistogram(t *testing.T) {
	ts, eng := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/cluster/stream",
		`{"graph":"test","algo":"prnibble","seeds":[0,12,24]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, body = %s", resp.StatusCode, body)
	}
	if got := eng.metrics.flushDur.With().Count(); got != 3 {
		t.Fatalf("flush observations = %d, want one per result line", got)
	}
}
