package service

// sched_stream_test.go covers the scheduler-driven request pipeline end to
// end over HTTP: NDJSON framing and its byte-level equivalence to the
// buffered encoder, streaming delivery before the batch finishes, deadline
// cancellation semantics (terminal error records, no arena leaks),
// queue-depth backpressure, graceful drain, and the scheduler counters in
// /v1/stats.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parcluster/internal/api"
)

// slowUnitWalks sizes a rand-HK-PR unit to tens of milliseconds on any
// plausible CI machine — long enough to observe streams mid-batch, short
// enough to keep the suite fast.
const slowUnitWalks = 500000

// schedTestServer builds an httptest server with an explicit engine config.
func schedTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine, *Server) {
	t.Helper()
	reg := NewRegistry(1, false)
	if err := reg.RegisterSpec("g", "caveman:cliques=16,k=12"); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(reg, cfg)
	srv := NewServer(eng)
	srv.Logf = func(string, ...any) {}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, eng, srv
}

// ndjsonLines posts body to url and splits the NDJSON response into lines.
func ndjsonLines(t *testing.T, url, body string) (status int, contentType string, lines []string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw := strings.TrimSuffix(string(data), "\n")
	if raw == "" {
		return resp.StatusCode, resp.Header.Get("Content-Type"), nil
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), strings.Split(raw, "\n")
}

// TestClusterStreamMatchesBufferedPerLine is the byte-identity acceptance
// check: every result record of the NDJSON stream must be byte-identical to
// the corresponding element the buffered encoder produces for the same
// deterministic query.
func TestClusterStreamMatchesBufferedPerLine(t *testing.T) {
	ts, _, _ := schedTestServer(t, Config{ProcBudget: 2, CacheSize: -1})
	const body = `{"graph":"g","algo":"prnibble","seeds":[0,12,24,36],"no_cache":true}`

	resp, err := http.Post(ts.URL+"/v1/cluster", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered: status %d err %v", resp.StatusCode, err)
	}
	var bufResp api.ClusterResponse
	if err := json.Unmarshal(buffered, &bufResp); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(bufResp.Results)) // first seed -> expected line
	for i := range bufResp.Results {
		var line bytes.Buffer
		if err := api.WriteClusterResultLine(&line, &bufResp.Results[i]); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(bufResp.Results[i].Seeds[0])] = line.String()
	}

	status, ct, lines := ndjsonLines(t, ts.URL+"/v1/cluster/stream", body)
	if status != http.StatusOK || ct != "application/x-ndjson" {
		t.Fatalf("stream: status %d content-type %q", status, ct)
	}
	if len(lines) != 2+len(bufResp.Results) {
		t.Fatalf("stream has %d lines, want header + %d results + trailer", len(lines), len(bufResp.Results))
	}
	var hdr struct {
		Graph   string `json:"graph"`
		Results int    `json:"results"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Graph != "g" || hdr.Results != 4 {
		t.Fatalf("header %q: %v / %+v", lines[0], err, hdr)
	}
	for _, line := range lines[1 : len(lines)-1] {
		var rec api.ClusterResult
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("result line %q: %v", line, err)
		}
		expect, ok := want[fmt.Sprint(rec.Seeds[0])]
		if !ok {
			t.Fatalf("stream delivered a result for unexpected seeds %v", rec.Seeds)
		}
		if line+"\n" != expect {
			t.Fatalf("per-line payload differs from buffered encoder\nstream   %q\nbuffered %q", line+"\n", expect)
		}
	}
	var trailer struct {
		Aggregate api.Aggregate `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || trailer.Aggregate.Queries != 4 {
		t.Fatalf("trailer %q: %v", lines[len(lines)-1], err)
	}
}

// TestAcceptHeaderNegotiatesNDJSON checks the buffered endpoint switches to
// the NDJSON framing under Accept: application/x-ndjson.
func TestAcceptHeaderNegotiatesNDJSON(t *testing.T) {
	ts, _, _ := schedTestServer(t, Config{ProcBudget: 2})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cluster",
		strings.NewReader(`{"graph":"g","seeds":[0,12]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain, application/x-ndjson;q=0.9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q, want application/x-ndjson", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	if got := bytes.Count(data, []byte("\n")); got != 4 {
		t.Fatalf("negotiated stream has %d lines, want 4 (header, 2 results, trailer):\n%s", got, data)
	}
}

// TestStreamDeliversResultsBeforeBatchFinishes is the streaming acceptance
// check: with a one-token budget serializing three slow units, the client
// must observe the first result line while later units have not run.
func TestStreamDeliversResultsBeforeBatchFinishes(t *testing.T) {
	ts, eng, _ := schedTestServer(t, Config{ProcBudget: 1, CacheSize: -1})
	body := fmt.Sprintf(`{"graph":"g","algo":"randhk","seeds":[0,12,24],"no_cache":true,"params":{"walks":%d}}`, slowUnitWalks)
	resp, err := http.Post(ts.URL+"/v1/cluster/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	if !sc.Scan() {
		t.Fatalf("no first result line: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), `"seeds"`) {
		t.Fatalf("second line is not a result record: %q", sc.Text())
	}
	// The first result is on the wire; the third unit must not have run
	// yet (one token, ~60ms per unit — the line reached us in microseconds).
	if ran := eng.Stats().Diffusions; ran >= 3 {
		t.Fatalf("first line observed only after all %d units ran", ran)
	}
	var rest int
	for sc.Scan() {
		rest++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if rest != 3 { // two more results + trailer
		t.Fatalf("stream ended with %d lines after the first result, want 3", rest)
	}
}

// TestStreamDeadlineMidBatch pins the cancellation semantics of the
// acceptance criteria: a deadline expiring mid-batch ends the NDJSON stream
// with a terminal error record, releases every arena, and bumps the
// scheduler's deadline counter.
func TestStreamDeadlineMidBatch(t *testing.T) {
	ts, eng, _ := schedTestServer(t, Config{ProcBudget: 1, CacheSize: -1})
	body := fmt.Sprintf(
		`{"graph":"g","algo":"randhk","seeds":[0,12,24,36,48,60],"no_cache":true,"deadline_ms":150,"params":{"walks":%d}}`,
		slowUnitWalks)
	status, _, lines := ndjsonLines(t, ts.URL+"/v1/cluster/stream", body)
	if status != http.StatusOK {
		t.Fatalf("status %d (the header had already committed 200)", status)
	}
	if len(lines) < 2 || len(lines) >= 8 {
		t.Fatalf("partial stream has %d lines; want header + some results + error", len(lines))
	}
	var errRec struct {
		Error string `json:"error"`
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal([]byte(last), &errRec); err != nil || errRec.Error == "" {
		t.Fatalf("stream did not end with a terminal error record: %q", last)
	}
	if !strings.Contains(errRec.Error, "deadline") {
		t.Fatalf("terminal error %q does not mention the deadline", errRec.Error)
	}
	waitForArenaDrain(t, eng)
	st := eng.Stats().Sched
	if st.Interactive.DeadlineMissed == 0 {
		t.Fatalf("deadline_missed not counted: %+v", st.Interactive)
	}
}

// TestBufferedDeadlineReturns504 checks the buffered endpoint's structured
// deadline error: expired work is a 504 with an error body, and no arena
// leaks.
func TestBufferedDeadlineReturns504(t *testing.T) {
	ts, eng, _ := schedTestServer(t, Config{ProcBudget: 1, CacheSize: -1})
	body := fmt.Sprintf(
		`{"graph":"g","algo":"randhk","seeds":[0,12,24,36],"no_cache":true,"deadline_ms":100,"params":{"walks":%d}}`,
		slowUnitWalks)
	resp, data := postJSON(t, ts.URL+"/v1/cluster", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Fatalf("no structured error body: %s", data)
	}
	waitForArenaDrain(t, eng)
	// An already-expired deadline is rejected at admission, before any work.
	resp, data = postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0],"deadline_ms":1,"no_cache":true,"algo":"randhk","params":{"walks":10000000}}`)
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("tiny deadline: status %d body %s", resp.StatusCode, data)
	}
}

// TestQueueFullReturns429 checks the backpressure path: with a one-request
// admission bound, a second concurrent interactive request is rejected with
// 429 and a Retry-After hint instead of queueing.
func TestQueueFullReturns429(t *testing.T) {
	ts, eng, _ := schedTestServer(t, Config{ProcBudget: 1, CacheSize: -1, MaxQueue: 1})
	slow := fmt.Sprintf(`{"graph":"g","algo":"randhk","seeds":[0,12,24],"no_cache":true,"params":{"walks":%d}}`, slowUnitWalks)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/cluster", "application/json", strings.NewReader(slow))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	for eng.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	resp, data := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	// The batch class has its own bound: an NCP request (batch by default)
	// is not rejected by the interactive bound.
	resp, data = postJSON(t, ts.URL+"/v1/ncp", `{"graph":"g","seeds":2,"alphas":[0.05],"epsilons":[0.001]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch-class NCP blocked by interactive bound: %d %s", resp.StatusCode, data)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Sched.Interactive.Rejected; got == 0 {
		t.Fatalf("interactive rejected counter = %d, want > 0", got)
	}
}

// TestServerDrainGraceful is the graceful-shutdown satellite: draining
// stops admission (503 + Retry-After, healthz flips), lets the in-flight
// request finish cleanly, and Drain returns once the last request closes.
func TestServerDrainGraceful(t *testing.T) {
	ts, eng, srv := schedTestServer(t, Config{ProcBudget: 1, CacheSize: -1})
	slow := fmt.Sprintf(`{"graph":"g","algo":"randhk","seeds":[0,12,24],"no_cache":true,"params":{"walks":%d}}`, slowUnitWalks)
	slowDone := make(chan error, 1)
	go func() {
		status, _, lines := 0, "", []string(nil)
		defer func() {
			if status != http.StatusOK {
				slowDone <- fmt.Errorf("slow stream status %d", status)
				return
			}
			last := ""
			if len(lines) > 0 {
				last = lines[len(lines)-1]
			}
			if !strings.Contains(last, `"aggregate"`) {
				slowDone <- fmt.Errorf("in-flight stream did not close cleanly with a trailer: %q", last)
				return
			}
			slowDone <- nil
		}()
		status, _, lines = ndjsonLines(t, ts.URL+"/v1/cluster/stream", slow)
	}()
	for eng.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(t.Context()) }()
	for !eng.Stats().Sched.Draining {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining.
	resp, data := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request while draining: status %d body %s, want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hbody), "draining") {
		t.Fatalf("healthz while draining: %d %s", hresp.StatusCode, hbody)
	}

	// The in-flight stream finishes with its full NDJSON framing, then the
	// drain completes.
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the last request finished")
	}
}

// TestSchedStatsSurfaced checks the scheduler counters flow through
// /v1/stats: class labels are honored (NCP defaults to batch), invalid
// classes and negative deadlines are 400s.
func TestSchedStatsSurfaced(t *testing.T) {
	ts, eng, _ := schedTestServer(t, Config{ProcBudget: 2})
	if resp, data := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive query: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[12],"class":"background"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("background query: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/ncp", `{"graph":"g","seeds":2,"alphas":[0.05],"epsilons":[0.001]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("ncp query: %d %s", resp.StatusCode, data)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0],"class":"realtime"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus class: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/cluster", `{"graph":"g","seeds":[0],"deadline_ms":-1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var st EngineStats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sched.Tokens < 1 || st.Sched.Avail != st.Sched.Tokens {
		t.Fatalf("sched tokens/avail = %d/%d", st.Sched.Tokens, st.Sched.Avail)
	}
	if st.Sched.Interactive.Admitted < 1 || st.Sched.Background.Admitted != 1 || st.Sched.Batch.Admitted != 1 {
		t.Fatalf("class admissions = %+v", st.Sched)
	}
	if st.Sched.Interactive.Weight <= st.Sched.Batch.Weight || st.Sched.Batch.Weight <= st.Sched.Background.Weight {
		t.Fatalf("default weights not ordered: %+v", st.Sched)
	}
	want := eng.Stats().Sched
	if st.Sched.Interactive != want.Interactive || st.Sched.Batch != want.Batch {
		t.Fatalf("/v1/stats sched diverges from engine: %+v vs %+v", st.Sched, want)
	}
}

// TestClassesReturnIdenticalResults pins determinism under the scheduler:
// the same deterministic batch run under different classes and worker
// budgets yields identical result payloads.
func TestClassesReturnIdenticalResults(t *testing.T) {
	ts, _, _ := schedTestServer(t, Config{ProcBudget: 4})
	get := func(class string, procs int) []api.ClusterResult {
		body := fmt.Sprintf(`{"graph":"g","algo":"prnibble","seeds":[0,12,24],"no_cache":true,"procs":%d,"class":%q}`, procs, class)
		resp, data := postJSON(t, ts.URL+"/v1/cluster", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("class %q: %d %s", class, resp.StatusCode, data)
		}
		var cr api.ClusterResponse
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatal(err)
		}
		return cr.Results
	}
	base := get("interactive", 1)
	for _, variant := range [][]api.ClusterResult{get("batch", 2), get("background", 4)} {
		if len(variant) != len(base) {
			t.Fatalf("result counts differ: %d vs %d", len(variant), len(base))
		}
		for i := range base {
			var a, b bytes.Buffer
			if err := api.WriteClusterResultLine(&a, &base[i]); err != nil {
				t.Fatal(err)
			}
			if err := api.WriteClusterResultLine(&b, &variant[i]); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("unit %d differs across classes:\n%s\n%s", i, a.String(), b.String())
			}
		}
	}
}
