package service

import "testing"

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	r := func(seed uint32) *ClusterResult { return &ClusterResult{Seeds: []uint32{seed}} }
	c.put("a", r(1))
	c.put("b", r(2))
	c.put("c", r(3)) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.get("b"); !ok || v.Seeds[0] != 2 {
		t.Fatalf("b = (%v, %v), want hit", v, ok)
	}
	// b is now most recent, so adding d evicts c.
	c.put("d", r(4))
	if _, ok := c.get("c"); ok {
		t.Fatal("c should have been evicted after b was refreshed")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", &ClusterResult{Size: 1})
	c.put("a", &ClusterResult{Size: 2})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after double put", c.len())
	}
	if v, _ := c.get("a"); v.Size != 2 {
		t.Fatalf("Size = %d, want the refreshed value 2", v.Size)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0) // nil cache
	c.put("a", &ClusterResult{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache should never hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache should report len 0")
	}
}
