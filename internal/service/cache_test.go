package service

import (
	"context"
	"testing"

	"parcluster/internal/gen"
)

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	r := func(seed uint32) *ClusterResult { return &ClusterResult{Seeds: []uint32{seed}} }
	c.put("a", r(1))
	c.put("b", r(2))
	c.put("c", r(3)) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.get("b"); !ok || v.Seeds[0] != 2 {
		t.Fatalf("b = (%v, %v), want hit", v, ok)
	}
	// b is now most recent, so adding d evicts c.
	c.put("d", r(4))
	if _, ok := c.get("c"); ok {
		t.Fatal("c should have been evicted after b was refreshed")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", &ClusterResult{Size: 1})
	c.put("a", &ClusterResult{Size: 2})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after double put", c.len())
	}
	if v, _ := c.get("a"); v.Size != 2 {
		t.Fatalf("Size = %d, want the refreshed value 2", v.Size)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0) // nil cache
	c.put("a", &ClusterResult{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache should never hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache should report len 0")
	}
	if c.bytes() != 0 {
		t.Fatal("disabled cache should report 0 bytes")
	}
}

// TestLRUByteAccounting pins the cache_bytes bookkeeping across insert,
// refresh and eviction: the running total always equals the sum of the
// retained entries' footprints and never drifts.
func TestLRUByteAccounting(t *testing.T) {
	c := newLRUCache(2)
	mk := func(members int) *ClusterResult {
		return &ClusterResult{Seeds: []uint32{1}, Members: make([]uint32, members)}
	}
	sum := func(keys map[string]*ClusterResult) int64 {
		var n int64
		for k, v := range keys {
			n += resultFootprint(k, v)
		}
		return n
	}
	c.put("a", mk(100))
	c.put("b", mk(200))
	if got, want := c.bytes(), sum(map[string]*ClusterResult{"a": mk(100), "b": mk(200)}); got != want {
		t.Fatalf("bytes after inserts = %d, want %d", got, want)
	}
	// Refresh a with a bigger value: delta applied, no double count.
	c.put("a", mk(500))
	if got, want := c.bytes(), sum(map[string]*ClusterResult{"a": mk(500), "b": mk(200)}); got != want {
		t.Fatalf("bytes after refresh = %d, want %d", got, want)
	}
	// Insert c: evicts b (a was refreshed more recently).
	c.put("c", mk(50))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, want := c.bytes(), sum(map[string]*ClusterResult{"a": mk(500), "c": mk(50)}); got != want {
		t.Fatalf("bytes after eviction = %d, want %d", got, want)
	}
}

// TestDetachResult pins copy-on-store: the detached copy shares no member
// memory with the original, so a cached entry can never alias a result
// arena that is released when the response write completes.
func TestDetachResult(t *testing.T) {
	orig := &ClusterResult{Seeds: []uint32{1}, Members: []uint32{10, 20, 30}, Size: 3}
	dup := detachResult(orig)
	if &dup.Members[0] == &orig.Members[0] {
		t.Fatal("detached copy aliases the original member slice")
	}
	orig.Members[0] = 99 // simulate the arena being recycled
	if dup.Members[0] != 10 {
		t.Fatalf("detached copy changed with the original: %d", dup.Members[0])
	}
	// nil members stay nil (null on the wire), not empty.
	if got := detachResult(&ClusterResult{}); got.Members != nil {
		t.Fatalf("detach invented a members slice: %v", got.Members)
	}
}

// TestCachedResponseSurvivesArenaRecycling is the end-to-end copy-on-store
// check: answer a query (borrowed), release its arena, run unrelated
// queries that recycle the same arena memory, then re-read the first
// answer from the cache — it must be unchanged.
func TestCachedResponseSurvivesArenaRecycling(t *testing.T) {
	g := gen.SBM(1, []int{64, 64}, 10, 2, 9)
	reg := NewRegistry(1, false)
	reg.RegisterGraph("g", g)
	eng := NewEngine(reg, Config{ProcBudget: 2, CacheSize: 16})
	ctx := context.Background()

	req := &ClusterRequest{Graph: "g", Seeds: []uint32{0}, Params: Params{Alpha: 0.05, Epsilon: 0.0001}}
	resp1, release, err := eng.ClusterBorrowed(ctx, req)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	want := append([]uint32(nil), resp1.Results[0].Members...)
	release() // arena back in the pool; resp1.Results[0].Members is now dead

	// Churn the pool with different queries so the recycled arena memory is
	// overwritten.
	for i := uint32(64); i < 72; i++ {
		r, rel, err := eng.ClusterBorrowed(ctx, &ClusterRequest{
			Graph: "g", Seeds: []uint32{i}, NoCache: true,
			Params: Params{Alpha: 0.05, Epsilon: 0.0001},
		})
		if err != nil {
			t.Fatalf("churn query %d: %v", i, err)
		}
		_ = r
		rel()
	}

	resp2, release2, err := eng.ClusterBorrowed(ctx, req)
	if err != nil {
		t.Fatalf("cached re-read: %v", err)
	}
	defer release2()
	if !resp2.Results[0].Cached {
		t.Fatal("second identical query was not served from the cache")
	}
	got := resp2.Results[0].Members
	if len(got) != len(want) {
		t.Fatalf("cached members length changed: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cached members[%d] = %d, want %d — cache aliased recycled arena memory", i, got[i], want[i])
		}
	}
}
