package service

import (
	"context"
	"time"

	"parcluster/internal/core"
	"parcluster/internal/graph"
	"parcluster/internal/obs"
	"parcluster/internal/sched"
	"parcluster/internal/sparse"
	"parcluster/internal/workspace"
)

// This file is the engine-level batching planner: it coalesces the work
// units of one multi-seed request into bit-parallel lane groups so that up
// to Config.BatchLanes same-parameter diffusions share a single edge
// traversal (core.NibbleBatch / core.PRNibbleBatch). Units the planner
// cannot batch — other algorithms, the beta-fraction PR-Nibble variant,
// requests that opt out with params.batching="off" — take the ordinary
// fan-out path in openStream. Everything downstream of the kernel (sweep,
// cache population, flight coalescing, NDJSON delivery, arena ownership) is
// shared with the fan-out path so the two are observationally identical.

// batchEligible reports whether a request's units may share bit-parallel
// traversals. Requires the engine to have lanes configured, more than one
// unit to coalesce, no client opt-out, and a lane kernel for the algorithm:
// nibble always, prnibble only in its full-frontier form (beta 0 or 1 — the
// beta-fraction variant ranks vertices across the whole frontier, which has
// no per-lane analogue).
func (e *Engine) batchEligible(rp resolved, req *ClusterRequest, nunits int) bool {
	if e.batchLanes <= 1 || nunits <= 1 || req.Params.Batching == "off" {
		return false
	}
	switch rp.algo {
	case "nibble":
		return true
	case "prnibble":
		return rp.p.Beta == 0 || rp.p.Beta == 1
	default:
		return false
	}
}

// laneLeader is one diffusion the planner actually runs: a unit that missed
// the cache and is the first of its key within its group. dups are
// same-group units with the same key, served copies of the leader's result
// exactly as flight followers would be; fl is the cross-request coalescing
// flight this leader registered (nil when another request already owns the
// key's flight, or when the request is NoCache).
type laneLeader struct {
	idx   int
	key   string
	fl    *flight
	dups  []int
	arena *workspace.Result
}

// runBatched drives a whole request through the batching planner: units are
// taken in request order, grouped into chunks of at most batchLanes, and
// each chunk answered by one shared traversal. It owns st.ch and closes it
// when every unit has been delivered or failed.
func (e *Engine) runBatched(ctx context.Context, cancel context.CancelFunc, st *ClusterStream, g graph.Graph, wsPool *workspace.Pool, ticket *sched.Ticket, req *ClusterRequest, rp resolved, keyBase string, units [][]uint32, procs int) {
	defer close(st.ch)
	tr := obs.FromContext(ctx)
	for lo := 0; lo < len(units); lo += e.batchLanes {
		hi := lo + e.batchLanes
		if hi > len(units) {
			hi = len(units)
		}
		e.runBatchGroup(ctx, cancel, st, g, wsPool, ticket, req, rp, keyBase, units, lo, hi, procs, tr)
	}
}

// runBatchGroup answers units[lo:hi] with (at most) one shared traversal.
// Cache hits are delivered immediately and never occupy a lane; duplicate
// keys within the group collapse onto one lane. The group acquires its proc
// tokens once — a batch costs the scheduler the same tokens as a single
// unit, which is exactly the traversal-sharing win — and releases them as
// len(pending) completed units so the scheduler's per-(graph, algo) service
// model learns the per-unit cost, not the group cost.
func (e *Engine) runBatchGroup(ctx context.Context, cancel context.CancelFunc, st *ClusterStream, g graph.Graph, wsPool *workspace.Pool, ticket *sched.Ticket, req *ClusterRequest, rp resolved, keyBase string, units [][]uint32, lo, hi, procs int, tr *obs.Trace) {
	pending := make([]*laneLeader, 0, hi-lo)
	var byKey map[string]*laneLeader
	if !req.NoCache {
		byKey = make(map[string]*laneLeader, hi-lo)
	}
	for i := lo; i < hi; i++ {
		key := rp.key(keyBase, units[i])
		if !req.NoCache {
			e.cacheMu.Lock()
			res, ok := e.cache.get(key)
			e.cacheMu.Unlock()
			if ok {
				e.hits.Add(1)
				hit := *res
				hit.Cached = true
				st.ch <- streamUnit{idx: i, res: trim(&hit, req.MaxMembers)}
				continue
			}
			if l, ok := byKey[key]; ok {
				l.dups = append(l.dups, i)
				continue
			}
		}
		l := &laneLeader{idx: i, key: key}
		if !req.NoCache {
			byKey[key] = l
			// Register the coalescing flight so concurrent requests on the
			// same key wait for this lane instead of re-running it. If a
			// foreign flight already owns the key we compute our own lane
			// anyway — waiting would stall the 63 sibling lanes on another
			// request's schedule.
			e.flightMu.Lock()
			if _, busy := e.flights[key]; !busy {
				l.fl = &flight{done: make(chan struct{})}
				e.flights[key] = l.fl
			}
			e.flightMu.Unlock()
			e.misses.Add(1)
		}
		pending = append(pending, l)
	}
	if len(pending) == 0 {
		return
	}

	failPending := func(err error) {
		for _, l := range pending {
			if l.fl != nil {
				l.fl.err = err
				e.flightMu.Lock()
				delete(e.flights, l.key)
				e.flightMu.Unlock()
				close(l.fl.done)
			}
			st.ch <- streamUnit{idx: l.idx, err: err}
			for _, d := range l.dups {
				st.ch <- streamUnit{idx: d, err: err}
			}
		}
		cancel()
	}

	queueStart := time.Now()
	grant, err := ticket.Acquire(ctx, procs)
	e.metrics.queueWait.With(ticket.Class().String()).Observe(time.Since(queueStart))
	if err != nil {
		failPending(err)
		return
	}
	tr.Span("queue_wait", queueStart)

	bunits := make([]core.BatchUnit, len(pending))
	for j, l := range pending {
		l.arena = wsPool.AcquireResult()
		bunits[j] = core.BatchUnit{Seeds: units[l.idx], Result: l.arena, Observer: kernelObserver(tr, l.idx)}
	}
	e.diffusions.Add(int64(len(pending)))
	e.modeCounts[rp.frontier].Add(int64(len(pending)))

	p := rp.p
	cfg := core.BatchConfig{Procs: procs, Frontier: rp.frontier, Workspace: wsPool, Cancel: ctx.Done()}
	var vecs []*sparse.Map
	var sts []core.Stats
	kernelStart := time.Now()
	switch rp.algo {
	case "nibble":
		vecs, sts = core.NibbleBatch(g, bunits, p.Epsilon, p.T, cfg)
	case "prnibble":
		rule := core.OptimizedRule
		if p.OriginalRule {
			rule = core.OriginalRule
		}
		vecs, sts = core.PRNibbleBatch(g, bunits, p.Alpha, p.Epsilon, rule, cfg)
	default:
		panic("service: unbatchable algo " + rp.algo) // batchEligible gates entry
	}
	e.metrics.kernelDur.With(rp.algo).Observe(time.Since(kernelStart))
	tr.Span("kernel", kernelStart)
	grant.ReleaseUnits(len(pending))
	if err := ctx.Err(); err != nil {
		// Deadline or client departure mid-kernel: every lane stopped at the
		// round boundary, so every partial result is discarded — never
		// cached, never published to followers, never delivered.
		for _, l := range pending {
			l.arena.Release()
		}
		failPending(err)
		return
	}
	e.batchGroups.Add(1)
	e.batchLanesFilled.Add(int64(len(pending)))
	e.batchTraversalsSaved.Add(int64(len(pending) - 1))

	sweepStart := time.Now()
	for j, l := range pending {
		res := sweepResult(g, units[l.idx], procs, l.arena, vecs[j], sts[j])
		var owned *ClusterResult
		if e.cache != nil {
			owned = detachResult(res)
			e.cacheMu.Lock()
			e.cache.put(l.key, owned)
			e.cacheMu.Unlock()
		}
		if l.fl != nil {
			if owned == nil {
				owned = detachResult(res)
			}
			l.fl.res = owned
			e.flightMu.Lock()
			delete(e.flights, l.key)
			e.flightMu.Unlock()
			close(l.fl.done)
		}
		for _, d := range l.dups {
			if owned == nil {
				owned = detachResult(res)
			}
			hit := *owned
			hit.Cached = true
			e.hits.Add(1)
			st.ch <- streamUnit{idx: d, res: trim(&hit, req.MaxMembers)}
		}
		st.ch <- streamUnit{idx: l.idx, res: trim(res, req.MaxMembers), arena: l.arena}
	}
	tr.Span("sweep", sweepStart)
}
