package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProcPoolBoundsConcurrency(t *testing.T) {
	p := newProcPool(4)
	var inUse, maxInUse atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.acquire(context.Background(), 2); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			cur := inUse.Add(2)
			for {
				old := maxInUse.Load()
				if cur <= old || maxInUse.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-2)
			p.release(2)
		}()
	}
	wg.Wait()
	if got := maxInUse.Load(); got > 4 {
		t.Fatalf("max tokens in use = %d, exceeds pool size 4", got)
	}
	if p.avail != 4 {
		t.Fatalf("avail = %d after all releases, want 4", p.avail)
	}
}

func TestProcPoolCancel(t *testing.T) {
	p := newProcPool(1)
	if err := p.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.acquire(ctx, 1); err == nil {
		t.Fatal("acquire should fail once the context times out")
	}
	p.release(1)
	// The cancelled waiter must not linger and eat the released token.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := p.acquire(ctx2, 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.release(1)
}

func TestProcPoolCancelWakesNarrowerWaiter(t *testing.T) {
	p := newProcPool(4)
	if err := p.acquire(context.Background(), 2); err != nil { // A holds 2
		t.Fatal(err)
	}
	// B wants the full pool and queues at the head.
	bCtx, cancelB := context.WithCancel(context.Background())
	bErr := make(chan error, 1)
	go func() { bErr <- p.acquire(bCtx, 4) }()
	for { // wait until B is queued
		p.mu.Lock()
		queued := len(p.waiters) == 1
		p.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// C wants 2 — satisfiable right now, but FIFO-blocked behind B.
	cDone := make(chan error, 1)
	go func() { cDone <- p.acquire(context.Background(), 2) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-cDone:
		t.Fatal("C acquired past B, breaking FIFO")
	default:
	}
	// Cancelling B must wake C immediately — without waiting for A.
	cancelB()
	if err := <-bErr; err == nil {
		t.Fatal("B should have been cancelled")
	}
	select {
	case err := <-cDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("C still blocked after the head waiter was cancelled")
	}
	p.release(2) // C
	p.release(2) // A
	if p.avail != 4 {
		t.Fatalf("avail = %d, want 4", p.avail)
	}
}

func TestProcPoolClamp(t *testing.T) {
	p := newProcPool(4)
	for in, want := range map[int]int{-3: 1, 0: 1, 3: 3, 9: 4} {
		if got := p.clamp(in); got != want {
			t.Errorf("clamp(%d) = %d, want %d", in, got, want)
		}
	}
}
