package service

// obshttp.go is the server half of the observability wiring: the
// per-request middleware (request IDs, traces, Server-Timing, structured
// request logs), the Prometheus exposition at GET /metrics, and the trace
// ring endpoints at GET /v1/trace and GET /v1/trace/{id}.

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parcluster/internal/api"
	"parcluster/internal/obs"
)

// requestIDKey carries the request's ID through the handler context, so
// error paths can tag their log records even when tracing is disabled.
type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// tracedEndpoint reports whether a path names one of the work endpoints
// whose requests get a trace. Reads of /v1/trace itself, listings, stats
// and probes stay out of the ring — they would bury the kernel traces the
// ring exists to keep. Ingest batches (POST /v1/graphs/{name}/edges) are
// work too: mutation is rarer than querying, and tracing it answers "which
// batch advanced the epoch".
func tracedEndpoint(path string) bool {
	switch path {
	case "/v1/cluster", "/v1/cluster/stream", "/v1/ncp":
		return true
	}
	return strings.HasPrefix(path, "/v1/graphs/") && strings.HasSuffix(path, "/edges")
}

// obsWriter wraps the ResponseWriter to capture the status code and inject
// the Server-Timing header at the last possible moment — the first
// WriteHeader — so it reflects every span recorded before the response
// committed. Flush passes through (the NDJSON path needs the underlying
// http.Flusher), and Unwrap supports http.NewResponseController.
type obsWriter struct {
	http.ResponseWriter
	tr     *obs.Trace
	status int
}

func (w *obsWriter) WriteHeader(code int) {
	if w.status != 0 {
		return // a handler double-writing keeps the first status
	}
	w.status = code
	if timing := w.tr.ServerTiming(); timing != "" {
		w.Header().Set(api.HeaderServerTiming, timing)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *obsWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (w *obsWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// outcomeFromStatus maps a response status to the trace outcome label.
func outcomeFromStatus(status int) string {
	switch {
	case status < 400:
		return "ok"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status < 500:
		return "client_error"
	default:
		return "error"
	}
}

// slogger returns the server's structured logger, falling back to the
// process default.
func (s *Server) slogger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// logRequest emits the per-request structured log record. With no
// configured Logger only slow requests and server errors are logged (so
// embedders and tests are not spammed); a configured Logger receives every
// request, slow ones at Warn.
func (s *Server) logRequest(r *http.Request, id string, status int, d time.Duration) {
	slow := s.SlowQuery > 0 && d >= s.SlowQuery
	if s.Logger == nil && !slow && status < 500 {
		return
	}
	level := slog.LevelInfo
	if slow || status >= 500 {
		level = slog.LevelWarn
	}
	s.slogger().LogAttrs(r.Context(), level, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.String("request_id", id),
		slog.Duration("duration", d),
		slog.Bool("slow", slow),
	)
}

// handleMetrics serves the Prometheus text exposition: the engine's
// lifetime counters, the latency histograms, and a small set of Go runtime
// gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", api.MetricsContentType)
	pw := obs.NewPromWriter(w)
	writeEngineMetrics(pw, s.eng.Stats())
	s.eng.metrics.reg.Expose(pw)
	writeRuntimeMetrics(pw)
	if err := pw.Flush(); err != nil {
		// Either the client went away mid-scrape or a writer-side format
		// violation; both are log-and-drop (the status is long committed).
		s.logf("lgc-serve: metrics exposition: %v", err)
	}
}

// writeEngineMetrics renders an EngineStats snapshot as counter and gauge
// families. Per-class series are emitted in sorted label order (background,
// batch, interactive), as the exposition lint demands.
func writeEngineMetrics(pw *obs.PromWriter, st EngineStats) {
	pw.Counter("lgc_queries_total", "Requests accepted for processing.", float64(st.Queries))
	pw.Counter("lgc_errors_total", "Requests that terminated with an error.", float64(st.Errors))
	pw.Counter("lgc_cache_hits_total", "Result-cache hits (including flight followers).", float64(st.CacheHits))
	pw.Counter("lgc_cache_misses_total", "Result-cache misses.", float64(st.CacheMisses))
	pw.Counter("lgc_diffusions_total", "Diffusion kernels executed.", float64(st.Diffusions))
	pw.Counter("lgc_graph_loads_total", "Graphs loaded by the registry.", float64(st.GraphLoads))
	pw.Counter("lgc_batch_groups_total", "Bit-parallel lane groups executed by the batching planner.", float64(st.Batch.Groups))
	pw.Counter("lgc_batch_lanes_filled_total", "Diffusions answered through shared-traversal lanes.", float64(st.Batch.LanesFilled))
	pw.Counter("lgc_batch_traversals_saved_total", "Edge traversals avoided by lane sharing (lanes minus groups).", float64(st.Batch.TraversalsSaved))
	pw.Counter("lgc_wal_appends_total", "Ingest batches committed to the write-ahead log.", float64(st.Wal.Appends))
	pw.Counter("lgc_wal_bytes_total", "Framed bytes appended to the write-ahead log.", float64(st.Wal.Bytes))
	pw.Counter("lgc_wal_fsyncs_total", "Explicit fsyncs issued by the write-ahead log.", float64(st.Wal.Fsyncs))
	pw.Counter("lgc_wal_replayed_batches_total", "Batches re-applied from the write-ahead log at load time.", float64(st.Wal.ReplayedBatches))
	pw.Counter("lgc_wal_checkpoints_total", "Compaction checkpoints persisted to the write-ahead log.", float64(st.Wal.Checkpoints))
	pw.Counter("lgc_wal_replay_ms_total", "Wall-clock milliseconds spent scanning and replaying write-ahead logs.", st.Wal.ReplayMS)
	pw.Gauge("lgc_wal_segments", "Write-ahead-log segment files currently on disk.", float64(st.Wal.Segments))
	pw.Gauge("lgc_in_flight", "Requests currently admitted and unfinished.", float64(st.InFlight))
	pw.Gauge("lgc_cache_entries", "Result-cache entries resident.", float64(st.CacheEntries))
	pw.Gauge("lgc_cache_bytes", "Approximate result-cache footprint in bytes.", float64(st.CacheBytes))
	pw.Gauge("lgc_proc_budget", "Scheduler worker-token budget.", float64(st.ProcBudget))
	pw.Gauge("lgc_sched_tokens_available", "Scheduler tokens not currently granted.", float64(st.Sched.Avail))
	pw.Gauge("lgc_sched_service_models", "Per-(graph, algorithm) service-time models tracked by the scheduler.", float64(st.Sched.ServiceModels))

	// Per-graph series (registry.List is name-sorted, as the lint demands).
	for _, gi := range st.Graphs {
		if !gi.Loaded {
			continue
		}
		pw.Gauge("lgc_graph_load_ms", "Milliseconds spent materializing the graph at load time.",
			float64(gi.LoadMS), obs.Label{Name: "graph", Value: gi.Name})
	}
	for _, gi := range st.Graphs {
		if gi.MappedBytes <= 0 {
			continue
		}
		pw.Gauge("lgc_graph_mapped_bytes", "Size of the memory-mapped compressed graph image.",
			float64(gi.MappedBytes), obs.Label{Name: "graph", Value: gi.Name})
	}
	for _, gi := range st.Graphs {
		if gi.MappedBytes <= 0 || gi.ResidentHint < 0 {
			continue
		}
		pw.Gauge("lgc_graph_resident_bytes", "Page-cache-resident bytes of the mapped graph image (mincore hint).",
			float64(gi.ResidentHint), obs.Label{Name: "graph", Value: gi.Name})
	}

	classes := []struct {
		name string
		cs   api.SchedClassStats
	}{
		{"background", st.Sched.Background},
		{"batch", st.Sched.Batch},
		{"interactive", st.Sched.Interactive},
	}
	counter := func(name, help string, value func(api.SchedClassStats) float64) {
		for _, c := range classes {
			pw.Counter(name, help, value(c.cs), obs.Label{Name: "class", Value: c.name})
		}
	}
	counter("lgc_sched_admitted_total", "Requests admitted, by class.",
		func(cs api.SchedClassStats) float64 { return float64(cs.Admitted) })
	counter("lgc_sched_rejected_total", "Requests rejected at the admission bound, by class.",
		func(cs api.SchedClassStats) float64 { return float64(cs.Rejected) })
	counter("lgc_sched_deadline_missed_total", "Deadline misses detected by the scheduler, by class.",
		func(cs api.SchedClassStats) float64 { return float64(cs.DeadlineMissed) })
	counter("lgc_sched_completed_total", "Work units completed, by class.",
		func(cs api.SchedClassStats) float64 { return float64(cs.Completed) })
	for _, c := range classes {
		pw.Gauge("lgc_sched_queue_depth", "Units queued for tokens, by class.",
			float64(c.cs.QueueDepth), obs.Label{Name: "class", Value: c.name})
	}
}

// writeRuntimeMetrics renders the Go runtime gauges the exposition carries
// alongside the service families.
func writeRuntimeMetrics(pw *obs.PromWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pw.Gauge("go_goroutines", "Number of goroutines that currently exist.", float64(runtime.NumGoroutine()))
	pw.Gauge("go_memstats_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.Alloc))
	pw.Counter("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", float64(ms.TotalAlloc))
	pw.Gauge("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", float64(ms.Sys))
	pw.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	pw.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	pw.Gauge("go_sched_gomaxprocs", "Value of GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
}

// handleTraceList serves GET /v1/trace: summaries of the most recently
// finished traces, newest first. ?limit=N bounds the listing (default 50).
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	traces := s.eng.tracer.Recent(limit)
	if traces == nil {
		traces = []obs.TraceSummary{} // an empty JSON array, not null
	}
	s.writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceSummary `json:"traces"`
	}{Traces: traces})
}

// handleTraceGet serves GET /v1/trace/{id}: the full snapshot — spans and
// per-round kernel events — of one finished trace.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "trace id must be a single path element"})
		return
	}
	snap, ok := s.eng.tracer.Get(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "no trace with id " + id + " (evicted, unfinished, or never taken)"})
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}
