// ingest.go is the mutation side of the engine: live edge batches applied
// through the registry's graph.Versioned overlays (POST
// /v1/graphs/{name}/edges), and the background compactor that folds the
// accumulated delta logs into fresh base CSRs. Queries never see either
// happen mid-flight — they run against the epoch snapshot pinned at
// admission (Registry.Acquire), and the epoch is part of every cache key,
// so a mutation invalidates nothing: stale entries simply stop being
// addressed and age out of the LRU.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"parcluster/internal/api"
	"parcluster/internal/graph"
	"parcluster/internal/sched"
)

// Ingest-size bounds, in the same spirit as the query caps: one batch must
// not be able to monopolize the server (oversized streams belong in
// multiple batches), and a hostile vertices value must not allocate an
// offsets array of arbitrary size on the next snapshot freeze.
const (
	maxIngestRecords  = 1 << 20
	maxIngestVertices = 1 << 28
)

// Ingest applies one atomic batch of edge mutations to a registered graph
// and returns the epoch the batch produced. The whole batch validates
// before anything applies: a single bad record (self loop, endpoint outside
// the universe) rejects it with a 400-mapped error and mutates nothing. A
// durable-commit failure (the WAL could not persist the batch) rejects it
// too, as a 500-mapped server fault. Ingesting into a registered-but-
// unloaded graph loads it first.
//
// The whole apply runs under a scheduler ticket — admission-only, no
// worker tokens, so batches never contend with kernels — which is what
// ties ingestion into the drain protocol: a draining engine refuses new
// batches at Admit (503), and Drained does not report quiescence until
// every in-flight apply has closed its ticket. Checking Draining() and
// then applying ticketless would let a batch slip through after drain
// flips and mutate (post-WAL: write to disk) after quiescence was
// announced.
//
// A batch that crosses the engine's pending-delta threshold kicks the
// background compactor instead of folding inline, so ingest latency stays
// proportional to the batch, not the graph.
func (e *Engine) Ingest(ctx context.Context, graphName string, req *api.IngestRequest) (*api.IngestResponse, error) {
	if graphName == "" {
		return nil, fmt.Errorf("%w: missing graph name", ErrBadRequest)
	}
	total := len(req.Edges) + len(req.Deletes)
	if total == 0 && req.Vertices == 0 {
		return nil, fmt.Errorf("%w: empty ingest batch", ErrBadRequest)
	}
	if total > maxIngestRecords {
		return nil, fmt.Errorf("%w: %d records exceeds the per-batch maximum %d", ErrBadRequest, total, maxIngestRecords)
	}
	if req.Vertices < 0 || req.Vertices > maxIngestVertices {
		return nil, fmt.Errorf("%w: vertices %d outside [0, %d]", ErrBadRequest, req.Vertices, maxIngestVertices)
	}
	ticket, err := e.sched.Admit(sched.Interactive, graphName, "ingest", time.Time{})
	if err != nil {
		return nil, err
	}
	defer ticket.Close()
	vg, err := e.reg.Versioned(ctx, graphName)
	if err != nil {
		return nil, err
	}
	st, err := vg.Apply(toEdges(req.Edges), toEdges(req.Deletes), req.Vertices)
	if err != nil {
		if errors.Is(err, graph.ErrCommit) {
			return nil, err // durability fault: the client's batch was fine
		}
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if e.maxDeltaEdges > 0 && st.Pending >= e.maxDeltaEdges {
		e.kickCompactor()
	}
	// Epoch, Vertices and Pending all come from Apply's own critical
	// section: a concurrent later batch or compaction cannot leak into the
	// response describing this one.
	return &api.IngestResponse{
		Graph:    graphName,
		Epoch:    st.Epoch,
		Vertices: st.Vertices,
		Inserted: len(req.Edges),
		Deleted:  len(req.Deletes),
		Pending:  st.Pending,
	}, nil
}

func toEdges(pairs [][2]uint32) []graph.Edge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return out
}

// kickCompactor requests an immediate compaction pass; a pass already
// requested (or running) absorbs the kick.
func (e *Engine) kickCompactor() {
	select {
	case e.compactKick <- struct{}{}:
	default:
	}
}

// compactor is the background fold loop: every interval (or immediately on
// kick) it walks the loaded graphs and folds any pending deltas. It exits
// when Engine.Close cancels compactCtx.
func (e *Engine) compactor(interval time.Duration) {
	defer close(e.compactDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.compactCtx.Done():
			return
		case <-t.C:
		case <-e.compactKick:
		}
		e.compactAll()
	}
}

// compactAll folds every loaded graph with pending deltas, each fold
// admitted through the scheduler as background-class work: compactions
// yield to queries under load, and a draining engine refuses them at
// admission — so Drained is never held back by a fold that hasn't started,
// while one already holding a ticket finishes and is waited for.
func (e *Engine) compactAll() {
	for name, l := range e.reg.versioned() {
		if l.vg.Pending() == 0 {
			continue
		}
		e.compactGraph(name, l)
	}
}

// compactGraph folds one graph's delta log under a scheduler ticket, then
// checkpoints the fold into the graph's WAL (when one is attached).
// Admission failure (draining, class saturated) just skips the fold — the
// deltas stay queryable through snapshots and the next pass retries.
func (e *Engine) compactGraph(name string, l *load) {
	ticket, err := e.sched.Admit(sched.Background, name, "compact", time.Time{})
	if err != nil {
		return
	}
	defer ticket.Close()
	grant, err := ticket.Acquire(e.compactCtx, 1)
	if err != nil {
		return
	}
	start := time.Now()
	folded, _ := l.vg.Compact(1) // one token acquired, one worker used
	grant.Release()
	if folded {
		e.metrics.kernelDur.With("compact").Observe(time.Since(start))
		if err := checkpointWAL(l); err != nil {
			// A failed checkpoint is not data loss — the log retains every
			// batch and the next fold retries — but it is worth a warning.
			slog.Default().Warn("wal checkpoint failed", "graph", name, "err", err)
		}
	}
}

// checkpointWAL persists the graph's current snapshot into its WAL and
// truncates the covered segments. Batches applied between the fold and the
// snapshot pin are harmless: the snapshot is still a complete edge set at
// its epoch, and replay resumes from the batch after it. A failed
// checkpoint only costs replay time — the log retains everything.
func checkpointWAL(l *load) error {
	if l.wal == nil {
		return nil
	}
	snap := l.vg.Snapshot()
	defer snap.Release()
	return l.wal.Checkpoint(snap.Epoch(), func(w io.Writer) error {
		return graph.WriteBinary(w, snap.Graph())
	})
}

// CompactNow synchronously folds every graph's pending deltas (and
// checkpoints attached WALs), bypassing the scheduler — a test and
// shutdown hook, not a serving-path API.
func (e *Engine) CompactNow() {
	for _, l := range e.reg.versioned() {
		l.vg.Compact(e.resolveProcs(0))
		_ = checkpointWAL(l) // best effort; the log retains everything
	}
}
