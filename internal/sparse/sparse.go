// Package sparse implements the sparse-set representations the paper's local
// algorithms depend on (§2 "Sparse Sets"): a sequential map-backed set and a
// lock-free concurrent hash table in the style of the phase-concurrent table
// of Shun & Blelloch [42].
//
// A sparse set stores (vertex, float64) pairs with the paper's ⊥ = 0
// convention: reading an absent key yields 0, and updating an absent key
// implicitly creates it. Both implementations expose Add (the paper's
// fetch-and-add), Set, Get, and iteration; the concurrent table additionally
// reports on Add whether the call created the entry, which EdgeMap uses to
// deduplicate its output frontier without any graph-sized scratch array.
//
// The concurrent table is open-addressing with linear probing over
// power-of-two capacity. Keys are claimed with compare-and-swap; values are
// accumulated with a CAS loop on the math.Float64bits image (an atomic
// floating-point fetch-and-add). It is phase-concurrent in the paper's
// sense: any number of goroutines may Add/Set/Get concurrently, while
// capacity changes (Reserve/Reset) must happen between parallel phases.
// Capacity is always reserved up front from the known per-iteration bound
// (frontier size + frontier volume), exactly as the paper sizes its tables.
package sparse

import (
	"math"
	"runtime"
	"sync/atomic"

	"parcluster/internal/parallel"
)

// Vector is the minimal read interface over sparse (vertex, float64)
// vectors, shared by Map, ConcurrentMap and Dense. The sweep cut and the
// snapshot/compare helpers only need these three methods, so they accept any
// representation.
type Vector interface {
	// Get returns the value for k, or 0 if absent (⊥ = 0).
	Get(k uint32) float64
	// Len returns the number of entries.
	Len() int
	// ForEach calls fn for every entry, in unspecified order. Must not run
	// concurrently with writers.
	ForEach(fn func(k uint32, v float64))
}

// Table is the concurrent accumulator interface the diffusion frontier
// engine drives: phase-concurrent Add/Set/Get with capacity management at
// phase boundaries. It is implemented by ConcurrentMap (open-addressing hash
// table, work proportional to the per-phase bound) and by Dense (flat
// graph-sized array plus a touched list, work proportional to the entries
// actually touched). The engine promotes from the former to the latter when
// a vector's support bound crosses a fraction of n.
type Table interface {
	Vector
	// Add atomically accumulates delta into k's value and reports whether
	// this call created the entry.
	Add(k uint32, delta float64) (created bool)
	// Set atomically overwrites k's value and reports whether this call
	// created the entry.
	Set(k uint32, v float64) (created bool)
	// Keys returns all present keys using p workers, in unspecified order.
	// Must not run concurrently with writers.
	Keys(p int) []uint32
	// Sum returns the sum of all values using p workers. Must not run
	// concurrently with writers.
	Sum(p int) float64
	// Reset clears the table and ensures capacity for at least capacity
	// entries (phase boundary only).
	Reset(p, capacity int)
	// Reserve grows the table so that extra more entries fit (phase
	// boundary only).
	Reserve(extra int)
}

var (
	_ Vector = (*Map)(nil)
	_ Table  = (*ConcurrentMap)(nil)
	_ Table  = (*Dense)(nil)
)

// emptyKey marks an unoccupied slot. Vertex IDs must be < MaxUint32.
const emptyKey = ^uint32(0)

// hash32 is the Murmur3 32-bit finalizer: a fast bijective scrambler with
// good avalanche behaviour, sufficient for power-of-two table indexing.
func hash32(k uint32) uint32 {
	k ^= k >> 16
	k *= 0x85ebca6b
	k ^= k >> 13
	k *= 0xc2b2ae35
	k ^= k >> 16
	return k
}

// Map is the sequential sparse set (the paper uses STL unordered_map here).
// The zero value is not ready to use; construct with NewMap.
type Map struct {
	m map[uint32]float64
}

// NewMap returns a sequential sparse set with capacity hint cap.
func NewMap(capacity int) *Map {
	if capacity < 0 {
		capacity = 0
	}
	return &Map{m: make(map[uint32]float64, capacity)}
}

// Get returns the value for k, or 0 if absent (⊥ = 0).
func (m *Map) Get(k uint32) float64 { return m.m[k] }

// Has reports whether k is present.
func (m *Map) Has(k uint32) bool { _, ok := m.m[k]; return ok }

// Add accumulates delta into k's value, creating the entry if needed, and
// reports whether it was created.
func (m *Map) Add(k uint32, delta float64) (created bool) {
	old, ok := m.m[k]
	m.m[k] = old + delta
	return !ok
}

// Set overwrites k's value.
func (m *Map) Set(k uint32, v float64) { m.m[k] = v }

// Delete removes k if present.
func (m *Map) Delete(k uint32) { delete(m.m, k) }

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.m) }

// Clear removes all entries while keeping the map's storage, so a recycled
// Map (see internal/workspace's result arena) refills without re-growing
// its buckets.
func (m *Map) Clear() { clear(m.m) }

// ForEach calls fn for every entry, in unspecified order.
func (m *Map) ForEach(fn func(k uint32, v float64)) {
	for k, v := range m.m {
		fn(k, v)
	}
}

// Keys returns the keys in unspecified order.
func (m *Map) Keys() []uint32 {
	out := make([]uint32, 0, len(m.m))
	for k := range m.m {
		out = append(out, k)
	}
	return out
}

// Sum returns the sum of all values (the l1 norm for non-negative vectors,
// used by the mass-conservation invariants).
func (m *Map) Sum() float64 {
	s := 0.0
	for _, v := range m.m {
		s += v
	}
	return s
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := NewMap(len(m.m))
	for k, v := range m.m {
		out.m[k] = v
	}
	return out
}

// counterShards is the number of entry-count shards. A single shared
// counter would be touched by every creating Add from every core — profiled
// at ~30% of total CPU from cache-line ping-pong alone — so the count is
// sharded by slot index across independent cache lines and summed on read.
const counterShards = 64

type countShard struct {
	n atomic.Int64
	_ [56]byte // pad to a cache line so shards never share one
}

// ConcurrentMap is the lock-free sparse set used by the parallel algorithms.
// Construct with NewConcurrent; the zero value is not usable.
type ConcurrentMap struct {
	keys  []uint32 // emptyKey = free slot; claimed with CAS
	vals  []uint64 // math.Float64bits of the value; updated with CAS loops
	mask  uint32
	count [counterShards]countShard
}

// NewConcurrent returns a concurrent sparse set able to hold at least
// capacity entries without exceeding a 50% load factor.
func NewConcurrent(capacity int) *ConcurrentMap {
	m := &ConcurrentMap{}
	m.alloc(capacity)
	return m
}

func tableSize(capacity int) int {
	if capacity < 4 {
		capacity = 4
	}
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	return size
}

func (m *ConcurrentMap) alloc(capacity int) {
	size := tableSize(capacity)
	m.keys = make([]uint32, size)
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	m.vals = make([]uint64, size)
	m.mask = uint32(size - 1)
	m.resetCount()
}

func (m *ConcurrentMap) resetCount() {
	for i := range m.count {
		m.count[i].n.Store(0)
	}
}

// Len returns the number of entries. Safe to call concurrently; the value is
// exact once all concurrent Adds have completed.
func (m *ConcurrentMap) Len() int {
	var n int64
	for i := range m.count {
		n += m.count[i].n.Load()
	}
	return int(n)
}

// Cap returns the number of entries the table can hold at 50% load.
func (m *ConcurrentMap) Cap() int { return len(m.keys) / 2 }

// findOrClaim returns the slot index for key k, claiming an empty slot if k
// is not present. created reports whether this call inserted k.
func (m *ConcurrentMap) findOrClaim(k uint32) (slot uint32, created bool) {
	i := hash32(k) & m.mask
	// Every pass — including a lost-CAS re-read of the same slot — counts
	// toward the probe bound, so the hard-overflow backstop fires even if
	// the loop stops advancing. A slot costs at most two passes (one lost
	// CAS plus one re-read), hence the 2x margin.
	for probes := 0; probes <= 2*len(m.keys); probes++ {
		cur := atomic.LoadUint32(&m.keys[i])
		if cur == k {
			return i, false
		}
		if cur == emptyKey {
			if atomic.CompareAndSwapUint32(&m.keys[i], emptyKey, k) {
				m.count[i%counterShards].n.Add(1)
				return i, true
			}
			// Lost the race; re-read this slot (it may now hold k).
			continue
		}
		i = (i + 1) & m.mask
	}
	// The soft capacity discipline is that callers Reserve/Reset with a
	// per-phase bound, so hitting a full table means that bound was wrong.
	panic("sparse: ConcurrentMap overflow; Reserve was not called with a sufficient bound")
}

// find returns the slot of k, or -1 if absent.
func (m *ConcurrentMap) find(k uint32) int {
	i := hash32(k) & m.mask
	for probes := 0; probes <= len(m.keys); probes++ {
		cur := atomic.LoadUint32(&m.keys[i])
		if cur == k {
			return int(i)
		}
		if cur == emptyKey {
			return -1
		}
		i = (i + 1) & m.mask
	}
	return -1
}

// Get returns the value for k, or 0 if absent. Safe under concurrent Adds;
// a concurrent read sees either the pre- or post-update value.
func (m *ConcurrentMap) Get(k uint32) float64 {
	i := m.find(k)
	if i < 0 {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&m.vals[i]))
}

// Has reports whether k is present.
func (m *ConcurrentMap) Has(k uint32) bool { return m.find(k) >= 0 }

// Add atomically accumulates delta into k's value (the paper's
// fetch-and-add), creating the entry if needed, and reports whether this
// call created it. Safe for any number of concurrent callers.
func (m *ConcurrentMap) Add(k uint32, delta float64) (created bool) {
	slot, created := m.findOrClaim(k)
	addr := &m.vals[slot]
	for {
		old := atomic.LoadUint64(addr)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, next) {
			return created
		}
	}
}

// Set atomically overwrites k's value (last writer wins), creating the entry
// if needed, and reports whether this call created it.
func (m *ConcurrentMap) Set(k uint32, v float64) (created bool) {
	slot, created := m.findOrClaim(k)
	atomic.StoreUint64(&m.vals[slot], math.Float64bits(v))
	return created
}

// Reset clears the table and ensures capacity for at least capacity
// entries, using p workers for the clearing pass. Must not run concurrently
// with other operations (phase boundary only).
//
// The allocation is reused only while it stays within 4x of the requested
// size; a much larger leftover table is dropped and reallocated at the
// right size instead. This keeps the per-iteration clearing cost O(current
// iteration bound) — not O(largest bound ever seen) — which the algorithms'
// locality guarantees rely on.
func (m *ConcurrentMap) Reset(p, capacity int) {
	size := tableSize(capacity)
	if size > len(m.keys) || size*4 < len(m.keys) {
		m.alloc(capacity)
		return
	}
	keys, vals := m.keys, m.vals
	parallel.ForRange(p, len(keys), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = emptyKey
		}
		for i := lo; i < hi; i++ {
			vals[i] = 0
		}
	})
	m.resetCount()
}

// ReusableFor reports whether Reset(p, capacity) would reuse the table's
// current allocation rather than reallocating — the recycling-accounting
// hook for pooled tables (see internal/workspace's result arena).
func (m *ConcurrentMap) ReusableFor(capacity int) bool {
	size := tableSize(capacity)
	return size <= len(m.keys) && size*4 >= len(m.keys)
}

// Reserve grows the table (rehashing existing entries) so that extra more
// entries fit. Must not run concurrently with other operations (phase
// boundary only).
func (m *ConcurrentMap) Reserve(extra int) {
	need := m.Len() + extra
	if tableSize(need) <= len(m.keys) {
		return
	}
	oldKeys, oldVals := m.keys, m.vals
	m.alloc(need)
	for i, k := range oldKeys {
		if k != emptyKey {
			slot, _ := m.findOrClaim(k)
			m.vals[slot] = oldVals[i]
		}
	}
}

// ForEach calls fn for every entry, in slot order. Must not run concurrently
// with writers.
func (m *ConcurrentMap) ForEach(fn func(k uint32, v float64)) {
	for i, k := range m.keys {
		if k != emptyKey {
			fn(k, math.Float64frombits(m.vals[i]))
		}
	}
}

// Keys returns all keys using p workers, in unspecified order. Must not run
// concurrently with writers. Work is proportional to the table capacity,
// which is proportional to the entry bound it was sized with.
func (m *ConcurrentMap) Keys(p int) []uint32 {
	return parallel.Filter(p, m.keys, func(k uint32) bool { return k != emptyKey })
}

// Sum returns the sum of all values using p workers. Must not run
// concurrently with writers.
func (m *ConcurrentMap) Sum(p int) float64 {
	n := len(m.keys)
	sums := make([]float64, (n+4095)/4096)
	parallel.ForRange(p, n, 4096, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			if m.keys[i] != emptyKey {
				s += math.Float64frombits(m.vals[i])
			}
		}
		sums[lo/4096] = s
	})
	s := 0.0
	for _, v := range sums {
		s += v
	}
	return s
}

// ToMap snapshots the table into a sequential Map. Must not run concurrently
// with writers.
func (m *ConcurrentMap) ToMap() *Map {
	out := NewMap(m.Len())
	m.ForEach(func(k uint32, v float64) { out.Set(k, v) })
	return out
}

// IDMap assigns dense consecutive IDs (0, 1, 2, ...) to a sparse set of
// uint32 keys, concurrently. rand-HK-PR uses it to map the last-visited
// vertices of random walks onto a compact integer range before the parallel
// integer sort (§3.5).
type IDMap struct {
	keys []uint32
	ids  []int32
	mask uint32
	next atomic.Int32
}

// NewIDMap returns an IDMap with capacity for at least capacity distinct keys.
func NewIDMap(capacity int) *IDMap {
	size := tableSize(capacity)
	m := &IDMap{
		keys: make([]uint32, size),
		ids:  make([]int32, size),
		mask: uint32(size - 1),
	}
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	return m
}

// Assign returns the dense ID for k, allocating the next free ID if k is
// new. Safe for concurrent use. IDs are dense in [0, Count()) but their
// assignment order is nondeterministic under concurrency.
func (m *IDMap) Assign(k uint32) int32 {
	i := hash32(k) & m.mask
	for probes := 0; probes <= 2*len(m.keys); probes++ {
		cur := atomic.LoadUint32(&m.keys[i])
		if cur == k {
			// The ID may not be published yet if the claimer is between its
			// two stores; wait until it is (ids are stored as id+1 so 0
			// means unpublished). Yield to the scheduler between reads: on
			// GOMAXPROCS=1 the claimer cannot run — and publish — until this
			// goroutine gives up the processor, so a raw spin would livelock.
			for {
				if id := atomic.LoadInt32(&m.ids[i]); id != 0 {
					return id - 1
				}
				runtime.Gosched()
			}
		}
		if cur == emptyKey {
			if atomic.CompareAndSwapUint32(&m.keys[i], emptyKey, k) {
				id := m.next.Add(1) - 1
				atomic.StoreInt32(&m.ids[i], id+1)
				if int(id) >= len(m.keys)/2 {
					panic("sparse: IDMap overflow")
				}
				return id
			}
			// Lost the race; re-read this slot. Counts as a probe so the
			// full-table backstop below stays reachable.
			continue
		}
		i = (i + 1) & m.mask
	}
	panic("sparse: IDMap full")
}

// Count returns the number of distinct keys assigned so far.
func (m *IDMap) Count() int { return int(m.next.Load()) }

// ForEach calls fn(key, id) for every assignment. Must not run concurrently
// with Assign.
func (m *IDMap) ForEach(fn func(k uint32, id int32)) {
	for i, k := range m.keys {
		if k != emptyKey {
			fn(k, m.ids[i]-1)
		}
	}
}
