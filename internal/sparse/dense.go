package sparse

// dense.go implements the flat ("dense") side of the adaptive sparse/dense
// vector split. Ligra's own implementation keeps all diffusion state in
// graph-sized arrays; our reproduction historically kept everything in hash
// tables to preserve strong locality bounds. Dense is the middle ground: a
// graph-sized value array plus a *touched list*, so reads and writes are
// O(1) array operations with no hashing or probing, while clearing remains
// proportional to the number of entries actually touched — the per-iteration
// locality guarantee the algorithms rely on. The frontier engine promotes a
// vector from ConcurrentMap to Dense once its support bound crosses a
// fraction of n (see internal/core), at which point the one-time O(n)
// allocation is already amortized by the work bound.

import (
	"math"
	"sync/atomic"

	"parcluster/internal/parallel"
)

// Dense is a concurrent sparse vector over a fixed universe [0, n): a flat
// value array with a touched list. It implements Table with the same
// phase-concurrency contract as ConcurrentMap: any number of goroutines may
// Add/Set/Get concurrently; Reset and read-side iteration are phase
// boundaries. Construct with NewDense; the zero value is not usable.
type Dense struct {
	vals []uint64 // math.Float64bits of the value; updated with CAS loops
	// present[k] flips 0 -> 1 exactly once per key via CAS; the winner
	// appends k to the touched list.
	present  []uint32
	touched  []uint32
	ntouched atomic.Int64
}

// NewDense returns a dense vector over the universe [0, n).
func NewDense(n int) *Dense {
	if n < 0 {
		n = 0
	}
	return &Dense{
		vals:    make([]uint64, n),
		present: make([]uint32, n),
		touched: make([]uint32, n),
	}
}

// Universe returns the key-universe size n the vector was built for.
func (d *Dense) Universe() int { return len(d.vals) }

// Len returns the number of entries touched since the last Reset.
func (d *Dense) Len() int { return int(d.ntouched.Load()) }

// Get returns the value for k, or 0 if absent. Safe under concurrent Adds;
// a concurrent read sees either the pre- or post-update value.
func (d *Dense) Get(k uint32) float64 {
	return math.Float64frombits(atomic.LoadUint64(&d.vals[k]))
}

// Has reports whether k has been touched.
func (d *Dense) Has(k uint32) bool { return atomic.LoadUint32(&d.present[k]) != 0 }

// claim marks k touched, recording it in the touched list exactly once, and
// reports whether this call was the one that created the entry.
func (d *Dense) claim(k uint32) (created bool) {
	if atomic.LoadUint32(&d.present[k]) != 0 {
		return false
	}
	if !atomic.CompareAndSwapUint32(&d.present[k], 0, 1) {
		return false
	}
	d.touched[d.ntouched.Add(1)-1] = k
	return true
}

// Add atomically accumulates delta into k's value (fetch-and-add), creating
// the entry if needed, and reports whether this call created it.
func (d *Dense) Add(k uint32, delta float64) (created bool) {
	created = d.claim(k)
	addr := &d.vals[k]
	for {
		old := atomic.LoadUint64(addr)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, next) {
			return created
		}
	}
}

// Set atomically overwrites k's value (last writer wins), creating the
// entry if needed, and reports whether this call created it.
func (d *Dense) Set(k uint32, v float64) (created bool) {
	created = d.claim(k)
	atomic.StoreUint64(&d.vals[k], math.Float64bits(v))
	return created
}

// Reset clears the vector in O(touched) work using p workers; the capacity
// argument is accepted for Table compatibility and ignored (the universe is
// fixed at n). Phase boundary only.
func (d *Dense) Reset(p, _ int) {
	n := int(d.ntouched.Load())
	touched := d.touched[:n]
	parallel.For(p, n, 2048, func(i int) {
		k := touched[i]
		d.vals[k] = 0
		d.present[k] = 0
	})
	d.ntouched.Store(0)
}

// Reserve is a no-op: a Dense vector always has capacity for its whole
// universe.
func (d *Dense) Reserve(int) {}

// Keys returns the touched keys, in unspecified order. The slice aliases
// internal storage: it must not be modified and is valid until the next
// Reset. Must not run concurrently with writers.
func (d *Dense) Keys(int) []uint32 { return d.touched[:d.ntouched.Load()] }

// Sum returns the sum of all values using p workers. Must not run
// concurrently with writers.
func (d *Dense) Sum(p int) float64 {
	n := int(d.ntouched.Load())
	const grain = 4096
	if n < 2*grain || parallel.ResolveProcs(p) == 1 {
		s := 0.0
		for _, k := range d.touched[:n] {
			s += math.Float64frombits(d.vals[k])
		}
		return s
	}
	sums := make([]float64, (n+grain-1)/grain)
	parallel.ForRange(p, n, grain, func(lo, hi int) {
		s := 0.0
		for _, k := range d.touched[lo:hi] {
			s += math.Float64frombits(d.vals[k])
		}
		sums[lo/grain] = s
	})
	s := 0.0
	for _, v := range sums {
		s += v
	}
	return s
}

// ForEach calls fn for every touched entry, in unspecified order. Must not
// run concurrently with writers.
func (d *Dense) ForEach(fn func(k uint32, v float64)) {
	for _, k := range d.touched[:d.ntouched.Load()] {
		fn(k, math.Float64frombits(d.vals[k]))
	}
}

// PromoteToDense copies a hash-table vector into a fresh Dense over [0, n).
// It is the hash -> array promotion step of the adaptive vector: called at
// a phase boundary when the support bound crosses the promotion threshold.
func PromoteToDense(n int, from *ConcurrentMap) *Dense {
	return PromoteToDenseInto(NewDense(n), from)
}

// PromoteToDenseInto copies a hash-table vector into d, which must be clear
// (freshly constructed or Reset), and returns d. It is the promotion step
// for callers that borrow their Dense vectors from a recycled workspace
// instead of allocating.
func PromoteToDenseInto(d *Dense, from *ConcurrentMap) *Dense {
	from.ForEach(func(k uint32, v float64) { d.Set(k, v) })
	return d
}
