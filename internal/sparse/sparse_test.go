package sparse

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"parcluster/internal/parallel"
)

func TestMapBasics(t *testing.T) {
	m := NewMap(4)
	if m.Get(5) != 0 {
		t.Fatal("absent key should read 0")
	}
	if m.Has(5) {
		t.Fatal("Has on absent key")
	}
	if created := m.Add(5, 1.5); !created {
		t.Fatal("first Add should create")
	}
	if created := m.Add(5, 2.5); created {
		t.Fatal("second Add should not create")
	}
	if got := m.Get(5); got != 4.0 {
		t.Fatalf("Get = %v, want 4", got)
	}
	m.Set(5, 1)
	if got := m.Get(5); got != 1 {
		t.Fatalf("after Set, Get = %v", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete(5)
	if m.Has(5) || m.Len() != 0 {
		t.Fatal("Delete failed")
	}
}

func TestMapSumCloneKeys(t *testing.T) {
	m := NewMap(0)
	for i := uint32(0); i < 100; i++ {
		m.Set(i, float64(i))
	}
	if got := m.Sum(); got != 4950 {
		t.Fatalf("Sum = %v", got)
	}
	c := m.Clone()
	c.Set(0, 100)
	if m.Get(0) != 0 {
		t.Fatal("Clone is not a deep copy")
	}
	keys := m.Keys()
	if len(keys) != 100 {
		t.Fatalf("Keys len = %d", len(keys))
	}
}

func TestConcurrentBasics(t *testing.T) {
	m := NewConcurrent(10)
	if m.Get(7) != 0 || m.Has(7) {
		t.Fatal("absent key")
	}
	if !m.Add(7, 0.5) {
		t.Fatal("first Add should create")
	}
	if m.Add(7, 0.25) {
		t.Fatal("second Add should not create")
	}
	if got := m.Get(7); got != 0.75 {
		t.Fatalf("Get = %v", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Set(7, -1)
	if got := m.Get(7); got != -1 {
		t.Fatalf("after Set, Get = %v", got)
	}
}

func TestConcurrentMatchesMapSequentially(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ref := NewMap(0)
	m := NewConcurrent(1)
	for i := 0; i < 5000; i++ {
		k := uint32(r.Intn(500))
		d := r.Float64() - 0.5
		m.Reserve(1)
		c1 := ref.Add(k, d)
		c2 := m.Add(k, d)
		if c1 != c2 {
			t.Fatalf("created mismatch for key %d", k)
		}
	}
	if ref.Len() != m.Len() {
		t.Fatalf("Len mismatch: %d vs %d", ref.Len(), m.Len())
	}
	ref.ForEach(func(k uint32, v float64) {
		if got := m.Get(k); math.Abs(got-v) > 1e-12 {
			t.Fatalf("key %d: %v vs %v", k, got, v)
		}
	})
}

func TestConcurrentParallelAdds(t *testing.T) {
	// Many goroutines hammer overlapping keys; total must be exact (each
	// delta is a power of two so float addition is exact regardless of
	// order) and created must fire exactly once per key.
	const keys = 1000
	const workers = 16
	const addsPerWorker = 2000
	m := NewConcurrent(keys)
	var createdCount sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < addsPerWorker; i++ {
				k := uint32(r.Intn(keys))
				if m.Add(k, 1.0) {
					if _, loaded := createdCount.LoadOrStore(k, true); loaded {
						t.Errorf("key %d created twice", k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := m.Sum(runtime.GOMAXPROCS(0))
	if total != workers*addsPerWorker {
		t.Fatalf("Sum = %v, want %d", total, workers*addsPerWorker)
	}
	created := 0
	createdCount.Range(func(_, _ any) bool { created++; return true })
	if created != m.Len() {
		t.Fatalf("created %d keys but Len = %d", created, m.Len())
	}
}

func TestConcurrentReserveRehash(t *testing.T) {
	m := NewConcurrent(4)
	for k := uint32(0); k < 4; k++ {
		m.Add(k, float64(k))
	}
	m.Reserve(1000)
	for k := uint32(4); k < 1000; k++ {
		m.Add(k, float64(k))
	}
	for k := uint32(0); k < 1000; k++ {
		if got := m.Get(k); got != float64(k) {
			t.Fatalf("key %d lost after rehash: %v", k, got)
		}
	}
}

func TestConcurrentReset(t *testing.T) {
	m := NewConcurrent(100)
	for k := uint32(0); k < 100; k++ {
		m.Add(k, 1)
	}
	m.Reset(2, 50)
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	for k := uint32(0); k < 100; k++ {
		if m.Has(k) {
			t.Fatalf("key %d survived Reset", k)
		}
	}
	// Reset to a larger capacity must reallocate.
	m.Reset(2, 10000)
	for k := uint32(0); k < 10000; k++ {
		m.Add(k, 1)
	}
	if m.Len() != 10000 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestConcurrentKeysAndForEach(t *testing.T) {
	m := NewConcurrent(64)
	want := map[uint32]float64{}
	for k := uint32(0); k < 64; k++ {
		m.Add(k*3, float64(k))
		want[k*3] = float64(k)
	}
	got := map[uint32]float64{}
	m.ForEach(func(k uint32, v float64) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: %v vs %v", k, got[k], v)
		}
	}
	keys := m.Keys(4)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) != 64 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i, k := range keys {
		if k != uint32(i*3) {
			t.Fatalf("Keys[%d] = %d", i, k)
		}
	}
}

func TestConcurrentToMap(t *testing.T) {
	m := NewConcurrent(10)
	m.Add(1, 0.5)
	m.Add(9, 1.5)
	sm := m.ToMap()
	if sm.Len() != 2 || sm.Get(1) != 0.5 || sm.Get(9) != 1.5 {
		t.Fatalf("ToMap mismatch: %v %v", sm.Get(1), sm.Get(9))
	}
}

func TestConcurrentAdversarialKeys(t *testing.T) {
	// Keys engineered to collide under the mask exercise linear probing.
	m := NewConcurrent(256)
	var ks []uint32
	for i := 0; i < 200; i++ {
		ks = append(ks, uint32(i*65536)) // many share low hash bits pre-mix
	}
	for _, k := range ks {
		m.Add(k, 1)
	}
	for _, k := range ks {
		if m.Get(k) != 1 {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestConcurrentQuickAgainstMap(t *testing.T) {
	f := func(keys []uint32, deltas []float64) bool {
		n := len(keys)
		if len(deltas) < n {
			n = len(deltas)
		}
		ref := NewMap(n)
		m := NewConcurrent(n + 1)
		for i := 0; i < n; i++ {
			k := keys[i] % 1000
			d := deltas[i]
			if math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			ref.Add(k, d)
			m.Add(k, d)
		}
		ok := true
		ref.ForEach(func(k uint32, v float64) {
			got := m.Get(k)
			if math.Abs(got-v) > 1e-9*(1+math.Abs(v)) {
				ok = false
			}
		})
		return ok && ref.Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIDMapSequential(t *testing.T) {
	m := NewIDMap(100)
	a := m.Assign(42)
	b := m.Assign(7)
	c := m.Assign(42)
	if a != c {
		t.Fatalf("same key got different IDs: %d vs %d", a, c)
	}
	if a == b {
		t.Fatal("different keys share an ID")
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestIDMapConcurrentDense(t *testing.T) {
	const distinct = 500
	const workers = 8
	m := NewIDMap(distinct)
	ids := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]int32, distinct)
			for k := 0; k < distinct; k++ {
				ids[w][k] = m.Assign(uint32(k * 13))
			}
		}(w)
	}
	wg.Wait()
	if m.Count() != distinct {
		t.Fatalf("Count = %d, want %d", m.Count(), distinct)
	}
	// All workers must agree on every key's ID, and IDs must be a
	// permutation of [0, distinct).
	seen := make([]bool, distinct)
	for k := 0; k < distinct; k++ {
		id := ids[0][k]
		for w := 1; w < workers; w++ {
			if ids[w][k] != id {
				t.Fatalf("key %d: worker 0 got %d, worker %d got %d", k, id, w, ids[w][k])
			}
		}
		if id < 0 || int(id) >= distinct {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
	}
}

func TestConcurrentOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	m := NewConcurrent(4)
	for k := uint32(0); k < 1000; k++ {
		m.Add(k, 1)
	}
}

func TestSumParallel(t *testing.T) {
	m := NewConcurrent(100000)
	want := 0.0
	for k := uint32(0); k < 100000; k++ {
		m.Add(k, 0.5)
		want += 0.5
	}
	for _, p := range []int{1, 4, parallel.ResolveProcs(0)} {
		if got := m.Sum(p); got != want {
			t.Fatalf("p=%d: Sum = %v, want %v", p, got, want)
		}
	}
}

func BenchmarkConcurrentAddDisjoint(b *testing.B) {
	m := NewConcurrent(1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			m.Add(uint32(r.Intn(1<<19)), 1)
		}
	})
}

func BenchmarkConcurrentAddContended(b *testing.B) {
	// All goroutines hit 64 keys: the contention regime the paper calls out
	// for naive rand-HK-PR aggregation.
	m := NewConcurrent(1 << 10)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			m.Add(uint32(r.Intn(64)), 1)
		}
	})
}

func BenchmarkMapAdd(b *testing.B) {
	m := NewMap(1 << 20)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		m.Add(uint32(r.Intn(1<<19)), 1)
	}
}

// --- Dense flat vector ---

func TestDenseBasics(t *testing.T) {
	d := NewDense(100)
	if d.Len() != 0 || d.Get(5) != 0 || d.Has(5) {
		t.Fatal("fresh Dense not empty")
	}
	if created := d.Add(5, 1.5); !created {
		t.Fatal("first Add should create")
	}
	if created := d.Add(5, 1.0); created {
		t.Fatal("second Add should not create")
	}
	if d.Get(5) != 2.5 || d.Len() != 1 || !d.Has(5) {
		t.Fatalf("Get/Len/Has after adds: %v %d", d.Get(5), d.Len())
	}
	if created := d.Set(7, 3.0); !created {
		t.Fatal("Set of new key should create")
	}
	d.Set(7, 4.0)
	if d.Get(7) != 4.0 || d.Len() != 2 {
		t.Fatalf("Set overwrite: %v len=%d", d.Get(7), d.Len())
	}
	if s := d.Sum(1); s != 6.5 {
		t.Fatalf("Sum = %v, want 6.5", s)
	}
	keys := d.Keys(1)
	if len(keys) != 2 {
		t.Fatalf("Keys = %v", keys)
	}
	// Zero values remain present entries (⊥ = absent only).
	d.Set(9, 0)
	if !d.Has(9) || d.Len() != 3 {
		t.Fatal("explicit zero entry not tracked")
	}
	d.Reset(1, 0)
	if d.Len() != 0 || d.Get(5) != 0 || d.Has(7) || d.Has(9) {
		t.Fatal("Reset did not clear touched entries")
	}
	// Reusable after reset.
	d.Add(11, 1)
	if d.Len() != 1 || d.Get(11) != 1 {
		t.Fatal("Dense unusable after Reset")
	}
}

func TestDenseConcurrentAddsMatchConcurrentMap(t *testing.T) {
	const n = 4096
	const workers = 8
	const perWorker = 20000
	d := NewDense(n)
	cm := NewConcurrent(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := uint32(w*2654435761 + 1)
			for i := 0; i < perWorker; i++ {
				r = r*1664525 + 1013904223
				k := r % n
				d.Add(k, 1)
			}
		}(w)
	}
	wg.Wait()
	// Replay sequentially into the hash table and compare.
	for w := 0; w < workers; w++ {
		r := uint32(w*2654435761 + 1)
		for i := 0; i < perWorker; i++ {
			r = r*1664525 + 1013904223
			cm.Add(r%n, 1)
		}
	}
	if d.Len() != cm.Len() {
		t.Fatalf("support %d != %d", d.Len(), cm.Len())
	}
	cm.ForEach(func(k uint32, v float64) {
		if d.Get(k) != v {
			t.Fatalf("d[%d] = %v, want %v", k, d.Get(k), v)
		}
	})
	if ds, cs := d.Sum(4), cm.Sum(4); ds != cs {
		t.Fatalf("sums differ: %v vs %v", ds, cs)
	}
	// Each touched key appears exactly once in the touched list.
	seen := map[uint32]bool{}
	for _, k := range d.Keys(2) {
		if seen[k] {
			t.Fatalf("key %d recorded twice", k)
		}
		seen[k] = true
	}
}

func TestPromoteToDense(t *testing.T) {
	cm := NewConcurrent(16)
	cm.Add(1, 0.5)
	cm.Add(300, 1.5)
	d := PromoteToDense(1000, cm)
	if d.Len() != 2 || d.Get(1) != 0.5 || d.Get(300) != 1.5 {
		t.Fatalf("promotion lost entries: len=%d", d.Len())
	}
	if d.Universe() != 1000 {
		t.Fatalf("Universe = %d", d.Universe())
	}
}

func TestDenseResetIsTouchedProportional(t *testing.T) {
	// Reset must clear only touched entries: untouched slots keep working
	// and the touched list restarts.
	d := NewDense(1 << 16)
	for i := uint32(0); i < 100; i++ {
		d.Add(i*601, float64(i))
	}
	d.Reset(4, 0)
	for i := uint32(0); i < 100; i++ {
		if d.Get(i*601) != 0 {
			t.Fatalf("slot %d survived reset", i*601)
		}
	}
	d.Add(42, 1)
	if ks := d.Keys(1); len(ks) != 1 || ks[0] != 42 {
		t.Fatalf("touched list after reset: %v", ks)
	}
}

// TestIDMapAssignSingleProc exercises the Assign publish-wait under
// GOMAXPROCS-constrained contention: with the Gosched in the spin loop the
// waiters always let the claimer publish.
func TestIDMapAssignSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	m := NewIDMap(256)
	var wg sync.WaitGroup
	ids := make([][]int32, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]int32, 128)
			for k := uint32(0); k < 128; k++ {
				out[k] = m.Assign(k)
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	if m.Count() != 128 {
		t.Fatalf("Count = %d, want 128", m.Count())
	}
	for w := 1; w < 4; w++ {
		for k := range ids[0] {
			if ids[w][k] != ids[0][k] {
				t.Fatalf("worker %d got id %d for key %d, worker 0 got %d",
					w, ids[w][k], k, ids[0][k])
			}
		}
	}
}
