package sparse

// lanes.go implements the lane-striped vector bank behind the bit-parallel
// batched diffusions (internal/core/batch.go): up to 64 independent sparse
// vectors ("lanes") over one vertex universe, stored SoA-style as a single
// flat array of 64 float64 slots per vertex. One shared edge traversal can
// then advance all lanes at once — the batch reads a vertex's lane mask,
// walks its set bits, and updates each lane's slot — while clearing stays
// proportional to the vertices actually touched, exactly like Dense.
//
// The stride is fixed at 64 regardless of how many lanes a batch fills, so
// one pooled allocation serves any batch size and a lane index is always a
// shift, never a multiply.

import (
	"math"
	"math/bits"
	"sync/atomic"

	"parcluster/internal/parallel"
)

// LaneStride is the number of value slots per vertex in a Lanes bank — the
// width of the per-vertex lane mask.
const LaneStride = 64

// Lanes is a bank of up to 64 concurrent sparse vectors over a fixed
// universe [0, n): a flat 64-slot-per-vertex value array, a per-vertex
// uint64 mask of the lanes that touched it, and a touched-vertex list. The
// phase-concurrency contract matches Dense: any number of goroutines may
// AtomicAdd/Touch concurrently; Set/Add require a single writer per vertex;
// Reset and read-side iteration (Get/Mask/Touched) are phase boundaries.
// Construct with NewLanes; the zero value is not usable.
type Lanes struct {
	vals []uint64 // math.Float64bits of vals[v*64+lane]; CAS-updated in edge phases
	// mask[v] is the set of lanes that touched v since the last Reset,
	// advanced by atomic fetch-OR; the writer that flips it 0 -> nonzero
	// appends v to the touched list.
	mask     []uint64
	touched  []uint32
	ntouched atomic.Int64
}

// NewLanes returns a lane bank over the universe [0, n).
func NewLanes(n int) *Lanes {
	if n < 0 {
		n = 0
	}
	return &Lanes{
		vals:    make([]uint64, n*LaneStride),
		mask:    make([]uint64, n),
		touched: make([]uint32, n),
	}
}

// Universe returns the vertex-universe size n the bank was built for.
func (l *Lanes) Universe() int { return len(l.mask) }

// Len returns the number of vertices touched (in any lane) since the last
// Reset.
func (l *Lanes) Len() int { return int(l.ntouched.Load()) }

// Mask returns the set of lanes that have touched v.
func (l *Lanes) Mask(v uint32) uint64 { return atomic.LoadUint64(&l.mask[v]) }

// Get returns lane's value at v, or 0 if untouched. Phase-boundary read:
// must not run concurrently with writers to v.
func (l *Lanes) Get(v uint32, lane int) float64 {
	return math.Float64frombits(l.vals[int(v)<<6+lane])
}

// Set overwrites lane's value at v without recording it in the mask or
// touched list (pair with Touch). Single-writer: no other goroutine may
// write v concurrently.
func (l *Lanes) Set(v uint32, lane int, x float64) {
	l.vals[int(v)<<6+lane] = math.Float64bits(x)
}

// Add accumulates x into lane's value at v without recording it in the mask
// or touched list (pair with Touch). Single-writer: no other goroutine may
// write v concurrently.
func (l *Lanes) Add(v uint32, lane int, x float64) {
	i := int(v)<<6 + lane
	l.vals[i] = math.Float64bits(math.Float64frombits(l.vals[i]) + x)
}

// AddMasked accumulates xs[l] into lane l's value at v for every set bit l
// of mask, in ascending lane order. xs is indexed by lane (at least
// LaneStride entries). Single-writer like Add: no other goroutine may write
// v concurrently. This is the single-proc edge-phase fast path — one bounds
// check for the whole row and no CAS, where per-lane AtomicAdd would pay an
// uncontended CAS per push.
func (l *Lanes) AddMasked(v uint32, xs []float64, mask uint64) {
	row := l.vals[int(v)<<6 : int(v)<<6+LaneStride]
	xs = xs[:LaneStride]
	if mask == ^uint64(0) {
		// Full batch: a straight ascending loop the compiler can unroll.
		for i := range row {
			row[i] = math.Float64bits(math.Float64frombits(row[i]) + xs[i])
		}
		return
	}
	for mm := mask; mm != 0; mm &= mm - 1 {
		i := bits.TrailingZeros64(mm)
		row[i] = math.Float64bits(math.Float64frombits(row[i]) + xs[i])
	}
}

// AtomicAdd accumulates x into lane's value at v with a CAS loop
// (fetch-and-add), safe under any number of concurrent writers. It does not
// record the touch; pair with Touch.
func (l *Lanes) AtomicAdd(v uint32, lane int, x float64) {
	addr := &l.vals[int(v)<<6+lane]
	for {
		old := atomic.LoadUint64(addr)
		next := math.Float64bits(math.Float64frombits(old) + x)
		if atomic.CompareAndSwapUint64(addr, old, next) {
			return
		}
	}
}

// Touch merges lanes into v's mask with an atomic fetch-OR (a CAS loop: Go
// 1.21 has no atomic Or64), recording v in the touched list exactly once —
// the writer that flips the mask from zero claims the slot. Safe under any
// number of concurrent writers.
func (l *Lanes) Touch(v uint32, lanes uint64) {
	addr := &l.mask[v]
	for {
		old := atomic.LoadUint64(addr)
		next := old | lanes
		if next == old {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, next) {
			if old == 0 {
				l.touched[l.ntouched.Add(1)-1] = v
			}
			return
		}
	}
}

// TouchSerial is Touch for a single-writer phase: the same merge and
// touched-list bookkeeping with plain loads and stores instead of a CAS
// loop. No other goroutine may write the bank concurrently.
func (l *Lanes) TouchSerial(v uint32, lanes uint64) {
	old := l.mask[v]
	next := old | lanes
	if next == old {
		return
	}
	l.mask[v] = next
	if old == 0 {
		l.touched[l.ntouched.Add(1)-1] = v
	}
}

// Touched returns the touched vertices, in unspecified order. The slice
// aliases internal storage: it must not be modified and is valid until the
// next Reset. Must not run concurrently with writers.
func (l *Lanes) Touched() []uint32 { return l.touched[:l.ntouched.Load()] }

// Reset clears every touched vertex's 64 slots and mask in O(touched) work
// using p workers. Phase boundary only.
func (l *Lanes) Reset(p int) {
	n := int(l.ntouched.Load())
	touched := l.touched[:n]
	parallel.For(p, n, 256, func(i int) {
		v := touched[i]
		row := l.vals[int(v)<<6 : int(v)<<6+LaneStride]
		clear(row)
		l.mask[v] = 0
	})
	l.ntouched.Store(0)
}
