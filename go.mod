module parcluster

go 1.21
