package parcluster

import (
	"math"
	"path/filepath"
	"testing"
)

func TestFindClusterDefaultsOnBarbell(t *testing.T) {
	g := MustGenerate("barbell", map[string]int{"k": 20})
	c, err := FindCluster(g, 0, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Members) != 20 || c.Cut != 1 {
		t.Fatalf("cluster size %d cut %d, want 20 and 1", len(c.Members), c.Cut)
	}
	want := 1.0 / float64(20*19+1)
	if math.Abs(c.Conductance-want) > 1e-12 {
		t.Fatalf("conductance %v, want %v", c.Conductance, want)
	}
	if c.Stats.Pushes == 0 {
		t.Fatal("stats not populated")
	}
}

func TestFindClusterAllMethods(t *testing.T) {
	g := MustGenerate("barbell", map[string]int{"k": 15})
	for _, method := range []string{"nibble", "prnibble", "hkpr", "randhk"} {
		opts := ClusterOptions{Method: method}
		opts.RandHKPR.Walks = 20000
		c, err := FindCluster(g, 0, opts)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(c.Members) != 15 {
			t.Errorf("%s: cluster size %d, want 15", method, len(c.Members))
		}
	}
	if _, err := FindCluster(g, 0, ClusterOptions{Method: "bogus"}); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestSequentialAndParallelVariantsAgree(t *testing.T) {
	g := MustGenerate("caveman", map[string]int{"cliques": 12, "k": 10})
	for _, method := range []string{"nibble", "prnibble", "hkpr", "randhk"} {
		seqOpts := ClusterOptions{Method: method}
		seqOpts.Nibble.Sequential = true
		seqOpts.PRNibble.Sequential = true
		seqOpts.HKPR.Sequential = true
		seqOpts.RandHKPR.Sequential = true
		seqOpts.RandHKPR.Walks = 5000
		seqOpts.Sweep.Sequential = true
		parOpts := ClusterOptions{Method: method}
		parOpts.RandHKPR.Walks = 5000
		cs, err := FindCluster(g, 3, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := FindCluster(g, 3, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		// Same quality guarantee; PR-Nibble's parallel schedule may find a
		// slightly different vector, so compare conductance loosely and
		// membership via Jaccard.
		if math.Abs(cs.Conductance-cp.Conductance) > 0.05 {
			t.Errorf("%s: conductance %v (seq) vs %v (par)", method, cs.Conductance, cp.Conductance)
		}
		if j := Jaccard(SortedCopy(cs.Members), SortedCopy(cp.Members)); j < 0.7 {
			t.Errorf("%s: Jaccard(seq, par) = %v", method, j)
		}
	}
}

func TestSweepVariantsIdentical(t *testing.T) {
	g := MustGenerate("community", map[string]int{"n": 5000, "seed": 4})
	vec, _ := PRNibble(g, 17, PRNibbleOptions{})
	a := SweepCut(g, vec, SweepOptions{Sequential: true})
	b := SweepCut(g, vec, SweepOptions{})
	c := SweepCut(g, vec, SweepOptions{SortBased: true})
	if a.Conductance != b.Conductance || a.Conductance != c.Conductance {
		t.Fatalf("sweep variants disagree: %v %v %v", a.Conductance, b.Conductance, c.Conductance)
	}
	if len(a.Cluster) != len(b.Cluster) || len(a.Cluster) != len(c.Cluster) {
		t.Fatalf("cluster sizes disagree: %d %d %d", len(a.Cluster), len(b.Cluster), len(c.Cluster))
	}
}

func TestGenerateAndIO(t *testing.T) {
	g := MustGenerate("figure1", nil)
	if g.NumVertices() != 8 || g.NumEdges() != 8 {
		t.Fatalf("figure1: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(0, path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	if _, err := Generate("not-a-recipe", nil); err == nil {
		t.Fatal("unknown recipe accepted")
	}
}

func TestStandInsListedAndGeneratable(t *testing.T) {
	names := StandInNames()
	if len(names) != 10 {
		t.Fatalf("expected the 10 Table 2 inputs, got %d", len(names))
	}
	g, err := StandIn(0, "3D-grid", Small)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty stand-in")
	}
}

func TestComputeNCPPublic(t *testing.T) {
	g := MustGenerate("caveman", map[string]int{"cliques": 10, "k": 8})
	pts := ComputeNCP(g, NCPOptions{Seeds: 10, Alphas: []float64{0.01}, Epsilons: []float64{1e-5}})
	if len(pts) == 0 {
		t.Fatal("no NCP points")
	}
	env := NCPLowerEnvelope(pts)
	if len(env) == 0 {
		t.Fatal("empty envelope")
	}
}

func TestPrecisionRecallAndJaccard(t *testing.T) {
	found := []uint32{1, 2, 3, 4}
	truth := []uint32{3, 4, 5, 6}
	p, r := PrecisionRecall(found, truth)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("P/R = %v/%v, want 0.5/0.5", p, r)
	}
	if j := Jaccard(found, truth); math.Abs(j-2.0/6.0) > 1e-15 {
		t.Fatalf("Jaccard = %v, want 1/3", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Fatalf("Jaccard(nil,nil) = %v", j)
	}
	p, r = PrecisionRecall(nil, truth)
	if p != 0 || r != 0 {
		t.Fatalf("empty found: %v/%v", p, r)
	}
}

func TestFromEdgesPublic(t *testing.T) {
	g := FromEdges(0, 0, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}
