// Package parcluster is a Go implementation of the parallel local graph
// clustering algorithms of Shun, Roosta-Khorasani, Fountoulakis and Mahoney,
// "Parallel Local Graph Clustering" (VLDB 2016, arXiv:1604.07515).
//
// A local clustering algorithm finds a low-conductance cluster around a seed
// vertex with work proportional to the size of the cluster found — not the
// size of the graph. This package provides the paper's four diffusion
// methods, each in a sequential and a shared-memory parallel version:
//
//   - Nibble — truncated lazy random walks (Spielman & Teng)
//   - PRNibble — approximate personalized PageRank pushes (Andersen, Chung
//     & Lang), with the paper's optimized update rule
//   - HKPR — deterministic heat kernel PageRank (Kloster & Gleich)
//   - RandHKPR — randomized heat kernel PageRank via sampled random walks
//     (Chung & Simpson)
//
// plus the sweep cut rounding procedure (sequential and work-efficient
// parallel) that converts a diffusion vector into a cluster, and network
// community profile (NCP) computation.
//
// # Quick start
//
//	g := parcluster.MustGenerate("caveman", map[string]int{"cliques": 16, "k": 12})
//	cluster, err := parcluster.FindCluster(g, 0, parcluster.ClusterOptions{})
//	fmt.Println(cluster.Members, cluster.Conductance)
//
// Every algorithm accepts a worker count (0 = all cores) and has a
// Sequential switch selecting the paper's reference sequential
// implementation. All parallel algorithms return clusters with the same
// quality guarantees as their sequential counterparts. The Example
// functions in this package are executed by go test, so they always
// compile and print exactly what the current code produces.
//
// # Frontier modes
//
// The parallel diffusions run on an adaptive sparse/dense frontier engine
// modeled on the real Ligra framework's direction switching. Each
// iteration's frontier is traversed either sparsely (an ID list with a
// degree prefix sum — work proportional to the frontier and its incident
// edges only) or densely (a bitmap-membership scan over the whole CSR —
// O(n + vol(F)) with a much smaller constant per edge), and the
// residual/mass vectors likewise promote from per-iteration-sized hash
// tables to flat arrays once their support crosses a fraction of n.
//
// The Frontier option on NibbleOptions, PRNibbleOptions, HKPROptions and
// EvolvingSetOptions selects the strategy: FrontierAuto (the default)
// switches per iteration via Ligra's heuristic — dense when
// |F| + vol(F) > (n + 2m)/20, i.e. when the frontier's incident edges are a
// sizable fraction of the graph, as happens with low epsilons, deep NCP
// sweeps, or large multi-vertex seed sets — while FrontierSparse and
// FrontierDense pin one. All modes perform the same pushes with the same
// values: clusters and Stats are identical, only the constants change. The
// lgc and lgc-serve commands expose the knob as -frontier.
//
// # Workspace pooling
//
// A dense-mode diffusion needs graph-sized scratch state: three ~16
// bytes/vertex flat vectors plus a share array, a frontier bitmap, and
// frontier ID buffers. Allocating these per call is fine for a one-shot
// query and pure GC pressure for a batch or serving workload, so the
// diffusions can instead borrow them from a per-graph WorkspacePool:
//
//	pool := parcluster.NewWorkspacePool(g)
//	opts := parcluster.ClusterOptions{Workspace: pool}
//	for _, seed := range seeds {
//		cluster, err := parcluster.FindCluster(g, seed, opts)
//		...
//	}
//
// Steady-state pooled runs perform zero graph-sized allocations (DESIGN.md
// §5 records the measured numbers), results are bit-identical with and
// without a pool, and a pool is safe for concurrent use — parallel queries
// check out distinct workspaces. Every algorithm options struct carries the
// same Workspace field, NCP pools its inner loop automatically, and
// lgc-serve gives every loaded graph its own pool, reporting hit/miss and
// bytes-recycled counters under "workspace" in GET /v1/stats. The borrowing
// rules (who acquires, who releases, what happens on panic) are documented
// in docs/ARCHITECTURE.md.
//
// # Batched diffusion
//
// Many same-parameter queries against one graph can share their edge
// traversals: NibbleBatch and PRNibbleBatch run up to MaxBatchLanes (64)
// diffusions as bit lanes of per-vertex uint64 masks, advancing all of
// them through one traversal per round. Each lane's floating-point work
// is identical in value and order to its unbatched run, so per-lane
// results are bit-identical to Nibble/PRNibble — the batch changes
// wall clock only (11x measured on a 64-seed batch at tight epsilon;
// DESIGN.md §9). lgc-serve applies the same kernels automatically to
// eligible multi-seed requests under -batch-lanes.
//
// # lgc-serve
//
// Command lgc-serve turns the one-shot pipeline into a long-lived query
// service for the paper's interactive-analyst workload: graphs load once
// into a shared registry (concurrent loads are deduplicated), and repeated
// queries are answered from an LRU result cache. Graphs accept live edge
// ingestion (POST /v1/graphs/{name}/edges): each batch advances the
// graph's epoch, queries run against epoch-pinned immutable snapshots,
// and the epoch is part of the cache key — every algorithm is
// deterministic given its parameters, so a cached result always answers
// exactly for the edge set it was computed on and never goes stale.
//
//	lgc-serve -addr :8080 -gen web=caveman:cliques=64,k=16
//	curl -s localhost:8080/v1/cluster -d '{"graph":"web","seeds":[0,16,32]}'
//
// Every request runs under a scheduler (internal/sched) rather than a
// plain worker pool: requests carry a priority class ("interactive" by
// default, "batch", "background") whose configured weight sets its grant
// share under saturation, an optional deadline_ms that is enforced end to
// end (unmeetable work is rejected at admission, running kernels cancel at
// their next round boundary), queued work is served round-robin across
// graphs so one hot graph cannot starve the others, and per-class queue
// bounds turn overload into fast 429 + Retry-After responses. SIGTERM
// drains gracefully: admission stops while in-flight queries and streams
// finish.
//
// It exposes POST /v1/cluster (batched multi-seed local clustering),
// POST /v1/cluster/stream (the same batch as NDJSON, each seed's result
// flushed as its diffusion completes — also via Accept:
// application/x-ndjson on /v1/cluster), POST /v1/ncp (network community
// profiles), GET /v1/graphs, GET /v1/stats (including the scheduler's
// per-class counters), GET /healthz, and expvar counters at /debug/vars,
// all JSON over the standard library's net/http. The request and response
// types are re-exported by this package (ClusterRequest, ClusterResponse,
// NCPRequest, ...); see examples/service for an in-process client and
// cmd/lgc-serve/README.md for the endpoint reference with curl examples.
//
// The internal packages implement the substrates the paper builds on: a
// Ligra-style frontier framework with dual sparse/dense vertex subsets,
// lock-free concurrent hash tables and flat touched-list arrays for sparse
// vectors, and work-efficient parallel primitives (prefix sums, filter,
// comparison and integer sorting). See DESIGN.md for the full system
// inventory, the frontier-engine design (§4), and the experiment index
// behind the reproduction of every table and figure in the paper's
// evaluation.
package parcluster
