package parcluster_test

// example_test.go holds the runnable godoc examples for the root API.
// `go test` executes every example and compares its printed output, so the
// snippets in the package documentation cannot rot: if an API or a default
// changes, the example fails here first.

import (
	"fmt"

	"parcluster"
)

// Example_prNibble runs the complete local clustering pipeline — PR-Nibble
// diffusion plus sweep cut, the paper's default configuration — around one
// seed vertex of a caveman graph (8 cliques of 6 vertices in a ring). With
// the paper's default alpha the diffusion spreads far enough that the best
// sweep cut spans the seed's clique and its three ring successors — a
// lower-conductance cut than the single clique (two ring edges over four
// cliques' volume beats two over one).
func Example_prNibble() {
	g := parcluster.MustGenerate("caveman", map[string]int{"cliques": 8, "k": 6})
	cluster, err := parcluster.FindCluster(g, 0, parcluster.ClusterOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("members:", parcluster.SortedCopy(cluster.Members))
	fmt.Printf("conductance: %.4f\n", cluster.Conductance)
	// Output:
	// members: [0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 42 43 44 45 46 47]
	// conductance: 0.0156
}

// Example_frontierMode pins the frontier-representation contract: the
// sparse (ID-list + hash-table) and dense (bitmap + flat-array) engine
// modes perform the same pushes with the same values, so clusters, stats,
// and conductances are identical — the knob trades constant factors only.
func Example_frontierMode() {
	g := parcluster.MustGenerate("caveman", map[string]int{"cliques": 8, "k": 6})
	seeds := []uint32{0, 1, 2}

	run := func(mode parcluster.FrontierMode) (*parcluster.Vector, parcluster.Stats) {
		return parcluster.PRNibbleFrom(g, seeds, parcluster.PRNibbleOptions{
			Epsilon:  1e-6,
			Frontier: mode,
			Procs:    2,
		})
	}
	sparseVec, sparseStats := run(parcluster.FrontierSparse)
	denseVec, denseStats := run(parcluster.FrontierDense)

	sparseCut := parcluster.SweepCut(g, sparseVec, parcluster.SweepOptions{})
	denseCut := parcluster.SweepCut(g, denseVec, parcluster.SweepOptions{})

	fmt.Println("same stats:", sparseStats == denseStats)
	fmt.Println("same cluster:", fmt.Sprint(parcluster.SortedCopy(sparseCut.Cluster)) == fmt.Sprint(parcluster.SortedCopy(denseCut.Cluster)))
	fmt.Println("pushes:", sparseStats.Pushes)
	// Output:
	// same stats: true
	// same cluster: true
	// pushes: 19669
}

// Example_workspacePool shows the batch-workload pattern: one pool per
// graph, shared by every run against it. The second query checks the first
// query's arenas back out instead of reallocating them — with identical
// results (the determinism suites pin this).
func Example_workspacePool() {
	g := parcluster.MustGenerate("caveman", map[string]int{"cliques": 8, "k": 6})
	pool := parcluster.NewWorkspacePool(g)
	opts := parcluster.ClusterOptions{Workspace: pool}

	first, _ := parcluster.FindCluster(g, 0, opts)
	second, _ := parcluster.FindCluster(g, 6, opts)
	fmt.Println("sizes:", len(first.Members), len(second.Members))

	st := pool.Stats()
	fmt.Println("acquires:", st.Acquires, "hits:", st.Hits, "leaked:", st.Acquires-st.Releases)
	// Output:
	// sizes: 24 24
	// acquires: 2 hits: 1 leaked: 0
}
