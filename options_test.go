package parcluster

import (
	"math"
	"testing"
)

func TestNibbleOptionDefaults(t *testing.T) {
	o := NibbleOptions{}
	o.defaults()
	if o.Epsilon != 1e-8 || o.T != 20 {
		t.Fatalf("Nibble defaults = %+v, want the paper's Table 3 settings", o)
	}
}

func TestPRNibbleOptionDefaults(t *testing.T) {
	o := PRNibbleOptions{}
	o.defaults()
	if o.Alpha != 0.01 || o.Epsilon != 1e-7 || o.Rule != OptimizedRule {
		t.Fatalf("PRNibble defaults = %+v", o)
	}
	o = PRNibbleOptions{UseOriginalRule: true}
	o.defaults()
	if o.Rule != OriginalRule {
		t.Fatal("UseOriginalRule not honored")
	}
}

func TestHKPROptionDefaults(t *testing.T) {
	o := HKPROptions{}
	o.defaults()
	if o.T != 10 || o.N != 20 || o.Epsilon != 1e-7 {
		t.Fatalf("HKPR defaults = %+v", o)
	}
}

func TestRandHKPROptionDefaults(t *testing.T) {
	o := RandHKPROptions{}
	o.defaults()
	if o.T != 10 || o.K != 10 || o.Walks != 100000 {
		t.Fatalf("RandHKPR defaults = %+v", o)
	}
}

func TestRandHKPRVariantsBitIdentical(t *testing.T) {
	// The public API exposes all three rand-HK-PR implementations; they
	// must return bit-identical vectors for the same Seed.
	g := MustGenerate("caveman", map[string]int{"cliques": 6, "k": 8})
	base := RandHKPROptions{Walks: 3000, Seed: 5}
	seqOpt := base
	seqOpt.Sequential = true
	conOpt := base
	conOpt.Contended = true
	vPar, _ := RandHKPR(g, 0, base)
	vSeq, _ := RandHKPR(g, 0, seqOpt)
	vCon, _ := RandHKPR(g, 0, conOpt)
	if vPar.Len() != vSeq.Len() || vPar.Len() != vCon.Len() {
		t.Fatalf("support sizes differ: %d %d %d", vPar.Len(), vSeq.Len(), vCon.Len())
	}
	vPar.ForEach(func(k uint32, v float64) {
		if vSeq.Get(k) != v || vCon.Get(k) != v {
			t.Fatalf("variant mismatch at %d: %v / %v / %v", k, v, vSeq.Get(k), vCon.Get(k))
		}
	})
}

func TestPRNibbleBetaViaAPI(t *testing.T) {
	g := MustGenerate("caveman", map[string]int{"cliques": 6, "k": 8})
	vec, st := PRNibble(g, 0, PRNibbleOptions{Alpha: 0.05, Epsilon: 1e-5, Beta: 0.5})
	if vec.Len() == 0 || st.Iterations == 0 {
		t.Fatal("beta variant returned nothing")
	}
}

func TestPRNibblePriorityQueueViaAPI(t *testing.T) {
	g := MustGenerate("caveman", map[string]int{"cliques": 6, "k": 8})
	vec, _ := PRNibble(g, 0, PRNibbleOptions{Sequential: true, PriorityQueue: true})
	res := SweepCut(g, vec, SweepOptions{})
	if res.Conductance > 0.1 {
		t.Fatalf("PQ variant cluster conductance %v", res.Conductance)
	}
}

func TestFigure1PipelineViaAPI(t *testing.T) {
	// The quickstart's pinned result: from seed A every method finds
	// {A, B, C} at conductance 1/7.
	g := MustGenerate("figure1", nil)
	opts := ClusterOptions{}
	opts.Nibble.Epsilon = 1e-4
	for _, method := range []string{"nibble", "prnibble", "hkpr"} {
		opts.Method = method
		c, err := FindCluster(g, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.Conductance-1.0/7.0) > 1e-12 {
			t.Fatalf("%s: conductance %v, want 1/7", method, c.Conductance)
		}
		got := SortedCopy(c.Members)
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("%s: cluster %v, want {A,B,C}", method, got)
		}
	}
}

func TestEvolvingSetViaAPI(t *testing.T) {
	g := MustGenerate("barbell", map[string]int{"k": 15})
	res, st := EvolvingSet(g, 0, EvolvingSetOptions{MaxIter: 50, GrowOnly: true, Seed: 3}, false)
	if len(res.Set) != 15 {
		t.Fatalf("set size %d, want the left clique", len(res.Set))
	}
	if st.Iterations == 0 {
		t.Fatal("stats not populated")
	}
	// And through FindCluster's method dispatch.
	opts := ClusterOptions{Method: "evolving"}
	opts.EvolvingSet = EvolvingSetOptions{MaxIter: 50, GrowOnly: true, Seed: 3}
	c, err := FindCluster(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Members) != 15 || c.Cut != 1 {
		t.Fatalf("FindCluster(evolving): size %d cut %d", len(c.Members), c.Cut)
	}
}

func TestStatsExposedThroughCluster(t *testing.T) {
	g := MustGenerate("barbell", map[string]int{"k": 10})
	c, err := FindCluster(g, 0, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Pushes == 0 || c.Stats.EdgesTouched == 0 {
		t.Fatalf("stats not propagated: %+v", c.Stats)
	}
	if c.Volume == 0 || c.Cut == 0 {
		t.Fatalf("cluster quality fields not set: %+v", c)
	}
}

func TestSeedSetAPI(t *testing.T) {
	// Seeding two vertices of the same barbell clique recovers that clique.
	// (Seeding *both* cliques symmetrically would be adversarial: the sweep
	// order interleaves the two sides and no good prefix exists.)
	g := MustGenerate("barbell", map[string]int{"k": 20})
	for name, run := range map[string]func() (*Vector, Stats){
		"nibble":   func() (*Vector, Stats) { return NibbleFrom(g, []uint32{0, 5}, NibbleOptions{Epsilon: 1e-6}) },
		"prnibble": func() (*Vector, Stats) { return PRNibbleFrom(g, []uint32{0, 5}, PRNibbleOptions{}) },
		"hkpr":     func() (*Vector, Stats) { return HKPRFrom(g, []uint32{0, 5}, HKPROptions{}) },
		"randhk":   func() (*Vector, Stats) { return RandHKPRFrom(g, []uint32{0, 5}, RandHKPROptions{Walks: 20000}) },
	} {
		vec, st := run()
		if vec.Len() == 0 || st.Pushes == 0 {
			t.Fatalf("%s: empty result", name)
		}
		res := SweepCut(g, vec, SweepOptions{})
		if res.Cut != 1 || len(res.Cluster) != 20 {
			t.Errorf("%s: cluster size %d cut %d, want one clique", name, len(res.Cluster), res.Cut)
		}
	}
}
