// Command lgc-ncp computes a network community profile (§4, Figure 12):
// the best cluster conductance at each cluster size, found by running
// PR-Nibble from many random seeds over a parameter grid. Output is
// "size conductance" per line (raw scatter or log-binned lower envelope),
// ready for any plotting tool.
//
// Usage:
//
//	lgc-ncp -gen Twitter -seeds 1000 > ncp.dat
//	lgc-ncp -graph web.bin -seeds 10000 -envelope
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"parcluster"
	"parcluster/internal/gen"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file")
		genSpec   = flag.String("gen", "", "generator spec or Table 2 stand-in name")
		seeds     = flag.Int("seeds", 100, "number of random seed vertices (paper: 1e5)")
		seedVerts = flag.String("seedvertices", "", "comma-separated explicit seed vertices (overrides -seeds)")
		alphas    = flag.String("alphas", "0.1,0.01,0.001", "comma-separated PR-Nibble alpha grid")
		epsilons  = flag.String("epsilons", "1e-5,1e-6,1e-7", "comma-separated PR-Nibble epsilon grid")
		procs     = flag.Int("procs", 0, "worker count (0 = all cores)")
		seed      = flag.Uint64("seed", 1, "random seed for choosing vertices")
		envelope  = flag.Bool("envelope", false, "emit the log-binned lower envelope instead of raw points")
		maxSize   = flag.Int("maxsize", 0, "cap recorded cluster size (0 = unlimited)")
	)
	flag.Parse()
	if err := run(*graphFile, *genSpec, *seeds, *seedVerts, *alphas, *epsilons, *procs, *seed, *envelope, *maxSize); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-ncp:", err)
		os.Exit(1)
	}
}

func run(graphFile, genSpec string, seeds int, seedVerts, alphas, epsilons string, procs int,
	seed uint64, envelope bool, maxSize int) error {
	var g *parcluster.Graph
	var err error
	switch {
	case graphFile != "":
		g, err = parcluster.LoadFile(procs, graphFile)
	case genSpec != "":
		var spec gen.Spec
		if spec, err = gen.ParseSpec(genSpec); err == nil {
			g, err = gen.Generate(procs, spec)
		}
	default:
		err = fmt.Errorf("pass -graph <file> or -gen <spec>")
	}
	if err != nil {
		return err
	}
	aGrid, err := parseFloats(alphas)
	if err != nil {
		return fmt.Errorf("-alphas: %w", err)
	}
	eGrid, err := parseFloats(epsilons)
	if err != nil {
		return fmt.Errorf("-epsilons: %w", err)
	}
	vertices, err := parseSeedVertices(seedVerts, g)
	if err != nil {
		return fmt.Errorf("-seedvertices: %w", err)
	}
	runs := seeds
	if len(vertices) > 0 {
		runs = len(vertices)
	} else if runs <= 0 {
		runs = 100 // NCPOptions defaults Seeds to 100; report what will run
	}
	fmt.Fprintf(os.Stderr, "graph: n=%d m=%d; running %d seeds x %d alphas x %d epsilons\n",
		g.NumVertices(), g.NumEdges(), runs, len(aGrid), len(eGrid))
	start := time.Now()
	points := parcluster.ComputeNCP(g, parcluster.NCPOptions{
		Seeds: seeds, SeedVertices: vertices, Alphas: aGrid, Epsilons: eGrid,
		Procs: procs, Seed: seed, MaxSize: maxSize,
	})
	fmt.Fprintf(os.Stderr, "ncp: %d points in %v\n", len(points), time.Since(start))
	if envelope {
		points = parcluster.NCPLowerEnvelope(points)
	}
	for _, pt := range points {
		fmt.Printf("%d %.6g\n", pt.Size, pt.Conductance)
	}
	return nil
}

// parseSeedVertices parses an explicit seed-vertex list, bounds-checking
// every entry against the graph before the uint32 conversion — the same
// guard lgc applies to its -seed flag.
func parseSeedVertices(s string, g *parcluster.Graph) ([]uint32, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= g.NumVertices() {
			return nil, fmt.Errorf("seed vertex %d out of range [0,%d)", v, g.NumVertices())
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
