// Command lgc-pack converts graph files between the supported on-disk
// formats — most usefully packing a text or binary graph into the
// compressed memory-mappable .lgz format that lgc-serve can serve without
// parsing (or fully paging in) the graph at startup.
//
// Usage:
//
//	lgc-pack -in soc-lj.adj -out soc-lj.lgz
//	lgc-pack -in soc-lj.txt -in-format edges -out soc-lj.lgz -check
//	lgc-pack -in soc-lj.lgz -out soc-lj.adj   # unpack works too
//
// After writing a .lgz file, -check re-opens it and runs the full O(m)
// verification pass (blocks checksum + every adjacency list decoded and
// validated), so a packed file that ships is known decodable end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcluster/internal/graph"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph path")
		inFormat  = flag.String("in-format", "", "input format: adj, bin, edges, lgz (default: from extension)")
		out       = flag.String("out", "", "output graph path")
		outFormat = flag.String("out-format", "", "output format: adj, bin, edges, lgz (default: from extension)")
		procs     = flag.Int("procs", 0, "worker count (0 = all cores)")
		check     = flag.Bool("check", false, "verify the written file (full decode for .lgz)")
	)
	flag.Parse()
	if err := run(*in, *inFormat, *out, *outFormat, *procs, *check); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-pack:", err)
		os.Exit(1)
	}
}

func run(in, inFormat, out, outFormat string, procs int, check bool) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	start := time.Now()
	g, err := graph.LoadFormat(procs, in, inFormat)
	if err != nil {
		return err
	}
	loadMS := time.Since(start)
	fmt.Printf("read %s: n=%d m=%d in %v\n", in, g.NumVertices(), g.NumEdges(), loadMS)

	start = time.Now()
	if err := graph.SaveFormat(procs, out, outFormat, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %v\n", out, time.Since(start))

	inSize, outSize := fileSize(in), fileSize(out)
	if inSize > 0 && outSize > 0 {
		fmt.Printf("size: %d -> %d bytes (%.2fx)\n", inSize, outSize, float64(inSize)/float64(outSize))
	}
	// The in-memory heap CSR footprint is the baseline the compressed file
	// competes with: 8-byte offsets per vertex plus a 4-byte target per
	// directed edge slot.
	heapBytes := 8*uint64(g.NumVertices()+1) + 4*g.TotalVolume()
	if outSize > 0 {
		fmt.Printf("vs heap CSR (%d bytes): %.2fx\n", heapBytes, float64(heapBytes)/float64(outSize))
	}

	if check {
		return verify(out, outFormat, procs, g)
	}
	return nil
}

// verify re-opens the written file and proves it holds the same graph. For
// .lgz that is the full Verify pass (checksums + every list decoded); for
// the text/binary formats a reload plus a shape comparison.
func verify(out, outFormat string, procs int, want graph.Graph) error {
	start := time.Now()
	g, err := graph.LoadFormat(procs, out, outFormat)
	if err != nil {
		return fmt.Errorf("re-reading %s: %w", out, err)
	}
	if c, ok := g.(*graph.CCSR); ok {
		defer c.Close()
		if err := c.Verify(procs); err != nil {
			return fmt.Errorf("verifying %s: %w", out, err)
		}
	}
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		return fmt.Errorf("%s holds n=%d m=%d, source had n=%d m=%d",
			out, g.NumVertices(), g.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	fmt.Printf("check: ok in %v\n", time.Since(start))
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}
