// Command lgc runs a single local graph clustering query: load or generate
// a graph, diffuse from a seed vertex with one of the paper's four
// algorithms, sweep, and print the cluster — the paper's interactive-analyst
// workflow (§1) as a command line.
//
// Usage:
//
//	lgc -gen barbell:k=20 -algo prnibble -seed 0
//	lgc -graph web.adj -algo hkpr -seed 12345 -procs 8
//	lgc -gen soc-LJ -algo nibble -seed -1        # -1 = largest component
//	lgc -gen soc-LJ -eps 1e-8 -frontier dense    # pin the dense frontier path
//
// The -frontier flag selects the diffusion engine's frontier representation:
// "auto" (default) switches between the sparse ID-list and dense bitmap
// representations per iteration via Ligra's direction heuristic, "sparse"
// and "dense" pin one. All modes return identical clusters.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcluster"
	"parcluster/internal/gen"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file (.adj, .bin, or edge list)")
		genSpec   = flag.String("gen", "", "generator spec, e.g. 'barbell:k=20' or a Table 2 stand-in name")
		algo      = flag.String("algo", "prnibble", "algorithm: nibble, prnibble, hkpr, randhk, evolving")
		seed      = flag.Int("seed", -1, "seed vertex (-1 = a vertex in the largest component)")
		procs     = flag.Int("procs", 0, "worker count (0 = all cores)")
		seq       = flag.Bool("seq", false, "use the sequential reference implementations")
		eps       = flag.Float64("eps", 0, "epsilon (0 = paper default for the algorithm)")
		alpha     = flag.Float64("alpha", 0.01, "PR-Nibble teleportation parameter")
		tIter     = flag.Int("T", 20, "Nibble iteration cap")
		hkT       = flag.Float64("t", 10, "heat kernel temperature")
		hkN       = flag.Int("N", 20, "HK-PR Taylor degree")
		walks     = flag.Int("walks", 100000, "rand-HK-PR walk count")
		walkLen   = flag.Int("K", 10, "rand-HK-PR maximum walk length")
		frontier  = flag.String("frontier", "auto", "frontier representation: auto, sparse, dense")
		maxPrint  = flag.Int("print", 20, "print at most this many cluster members")
	)
	flag.Parse()
	if err := run(*graphFile, *genSpec, *algo, *seed, *procs, *seq, *eps, *alpha,
		*tIter, *hkT, *hkN, *walks, *walkLen, *frontier, *maxPrint); err != nil {
		fmt.Fprintln(os.Stderr, "lgc:", err)
		os.Exit(1)
	}
}

func run(graphFile, genSpec, algo string, seed, procs int, seq bool, eps, alpha float64,
	tIter int, hkT float64, hkN, walks, walkLen int, frontier string, maxPrint int) error {
	fmode, err := parcluster.ParseFrontierMode(frontier)
	if err != nil {
		return err
	}
	g, err := loadGraph(graphFile, genSpec, procs)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	if g.NumVertices() == 0 {
		return fmt.Errorf("empty graph")
	}
	var sv uint32
	if seed < 0 {
		rep, size := g.LargestComponent()
		sv = rep
		fmt.Printf("seed: %d (largest component, %d vertices)\n", sv, size)
	} else {
		// Validate before the uint32 conversion: a value past NumVertices()
		// must be a clear error, never a wrapped-around vertex ID.
		if sv, err = seedVertex(g, seed); err != nil {
			return err
		}
	}

	// One query only borrows from the pool once, but wiring it keeps the CLI
	// on the same code path the batch and serving layers exercise.
	opts := parcluster.ClusterOptions{Method: algo, Workspace: parcluster.NewWorkspacePool(g)}
	opts.Nibble = parcluster.NibbleOptions{Epsilon: orDefault(eps, 1e-8), T: tIter, Procs: procs, Sequential: seq, Frontier: fmode}
	opts.PRNibble = parcluster.PRNibbleOptions{Alpha: alpha, Epsilon: orDefault(eps, 1e-7), Procs: procs, Sequential: seq, Frontier: fmode}
	opts.HKPR = parcluster.HKPROptions{T: hkT, N: hkN, Epsilon: orDefault(eps, 1e-7), Procs: procs, Sequential: seq, Frontier: fmode}
	opts.RandHKPR = parcluster.RandHKPROptions{T: hkT, K: walkLen, Walks: walks, Procs: procs, Sequential: seq}
	opts.EvolvingSet = parcluster.EvolvingSetOptions{Procs: procs, Frontier: fmode}
	opts.Sweep = parcluster.SweepOptions{Procs: procs, Sequential: seq}

	start := time.Now()
	cluster, err := parcluster.FindCluster(g, sv, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm: %s (%s)\n", algo, mode(seq))
	fmt.Printf("time: %v\n", elapsed)
	fmt.Printf("stats: %v\n", cluster.Stats)
	fmt.Printf("cluster: size=%d conductance=%.6g volume=%d cut=%d\n",
		len(cluster.Members), cluster.Conductance, cluster.Volume, cluster.Cut)
	show := cluster.Members
	suffix := ""
	if len(show) > maxPrint {
		show = show[:maxPrint]
		suffix = fmt.Sprintf(" ... (%d more)", len(cluster.Members)-maxPrint)
	}
	fmt.Printf("members: %v%s\n", show, suffix)
	return nil
}

func loadGraph(graphFile, genSpec string, procs int) (*parcluster.Graph, error) {
	switch {
	case graphFile != "" && genSpec != "":
		return nil, fmt.Errorf("pass -graph or -gen, not both")
	case graphFile != "":
		return parcluster.LoadFile(procs, graphFile)
	case genSpec != "":
		spec, err := gen.ParseSpec(genSpec)
		if err != nil {
			return nil, err
		}
		return gen.Generate(procs, spec)
	default:
		return nil, fmt.Errorf("pass -graph <file> or -gen <spec> (known recipes: %v)", gen.KnownRecipes())
	}
}

// seedVertex bounds-checks a user-supplied seed vertex against the graph
// before converting it to a vertex ID.
func seedVertex(g *parcluster.Graph, seed int) (uint32, error) {
	if seed < 0 || seed >= g.NumVertices() {
		return 0, fmt.Errorf("seed vertex %d out of range [0,%d)", seed, g.NumVertices())
	}
	return uint32(seed), nil
}

func orDefault(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

func mode(seq bool) string {
	if seq {
		return "sequential"
	}
	return "parallel"
}
