// Command lgc-bench regenerates the paper's evaluation tables and figures
// on synthetic stand-in graphs (see DESIGN.md §2 for the experiment index
// and §3 for the stand-in substitutions).
//
// Usage:
//
//	lgc-bench -experiment table3
//	lgc-bench -experiment all -scale small
//	lgc-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcluster/internal/bench"
	"parcluster/internal/gen"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (or 'all')")
		scaleStr   = flag.String("scale", "medium", "graph scale: small, medium, large")
		procs      = flag.Int("procs", 0, "maximum worker count (0 = all cores)")
		reps       = flag.Int("reps", 3, "timed repetitions per measurement (minimum reported)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "lgc-bench: -experiment is required (try -list)")
		os.Exit(2)
	}
	scale, err := gen.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgc-bench:", err)
		os.Exit(2)
	}
	w := bench.NewWorkspace(bench.Config{
		Scale: scale,
		Procs: *procs,
		Out:   os.Stdout,
		Reps:  *reps,
	})
	start := time.Now()
	if err := w.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal harness time: %v\n", time.Since(start))
}
