// Command lgc-gen generates a synthetic graph and writes it to a file in
// any of the supported formats (.adj Ligra text, .bin binary, .lgz
// compressed memory-mappable, edge list).
//
// Usage:
//
//	lgc-gen -gen randlocal:n=10000000,deg=5 -out randlocal.bin
//	lgc-gen -gen 3D-grid -out grid.adj
//	lgc-gen -gen soc-LJ -out lj.lgz
//	lgc-gen -gen soc-LJ -out lj.graph -format lgz
//	lgc-gen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcluster/internal/gen"
	"parcluster/internal/graph"
)

func main() {
	var (
		spec   = flag.String("gen", "", "generator spec, e.g. 'randlocal:n=100000,deg=5'")
		out    = flag.String("out", "", "output path (.adj, .bin, .lgz, or edge list)")
		format = flag.String("format", "", "output format: adj, bin, edges, lgz (default: from extension)")
		procs  = flag.Int("procs", 0, "worker count (0 = all cores)")
		list   = flag.Bool("list", false, "list known generator recipes and exit")
		check  = flag.Bool("check", false, "validate graph invariants before writing")
	)
	flag.Parse()
	if *list {
		for _, name := range gen.KnownRecipes() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*spec, *out, *format, *procs, *check); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-gen:", err)
		os.Exit(1)
	}
}

func run(specStr, out, format string, procs int, check bool) error {
	if specStr == "" || out == "" {
		return fmt.Errorf("both -gen and -out are required (try -list)")
	}
	spec, err := gen.ParseSpec(specStr)
	if err != nil {
		return err
	}
	start := time.Now()
	g, err := gen.Generate(procs, spec)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: n=%d m=%d in %v\n", spec.Name, g.NumVertices(), g.NumEdges(), time.Since(start))
	if check {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("generated graph failed validation: %w", err)
		}
		fmt.Println("validation: ok")
	}
	start = time.Now()
	if err := graph.SaveFormat(procs, out, format, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %v\n", out, time.Since(start))
	return nil
}
