// Command lgc-serve runs the parcluster query service: a long-lived HTTP
// daemon that loads each graph once and answers many local-clustering
// queries against it — the paper's interactive-analyst workload (§1) as a
// shared service instead of a one-shot CLI.
//
// Graphs are registered at startup from files (-graph) or generator specs
// (-gen), and by default any generator spec or Table 2 stand-in name can
// also be queried directly (-dynamic); graphs load lazily on first query,
// concurrent loads are deduplicated, and results are cached in an LRU.
//
// Usage:
//
//	lgc-serve -addr :8080 -gen web=caveman:cliques=64,k=16 -graph lj=soc-lj.bin
//	curl -s localhost:8080/v1/cluster -d '{"graph":"web","algo":"prnibble","seeds":[0,16,32]}'
//	curl -s localhost:8080/v1/ncp -d '{"graph":"web","seeds":50,"envelope":true}'
//	curl -s localhost:8080/v1/graphs
//	curl -s localhost:8080/v1/stats
//
// Endpoints: POST /v1/cluster, POST /v1/ncp, GET /v1/graphs, GET /v1/stats,
// GET /healthz, GET /debug/vars (expvar).
//
// The -frontier flag sets the server-wide default frontier-representation
// mode for diffusions ("auto", "sparse" or "dense"; auto switches per
// iteration via Ligra's direction heuristic). Requests can override it per
// query with params.frontier, and GET /v1/stats reports how many diffusions
// ran under each mode. Results are identical in every mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parcluster/internal/core"
	"parcluster/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		procs     = flag.Int("procs", 0, "total worker budget shared by all queries (0 = all cores)")
		maxQProcs = flag.Int("max-query-procs", 0, "per-query worker clamp (0 = the full budget)")
		cacheSize = flag.Int("cache", 1024, "result cache capacity in entries (negative = disable)")
		dynamic   = flag.Bool("dynamic", true, "allow generator specs as graph names in queries (capped at 64 distinct specs)")
		preload   = flag.String("preload", "", "comma-separated graph names to load before serving")
		frontier  = flag.String("frontier", "auto", "default frontier representation: auto, sparse, dense (requests may override)")
	)
	var graphs, gens multiFlag
	flag.Var(&graphs, "graph", "register a graph file as name=path (repeatable)")
	flag.Var(&gens, "gen", "register a generator spec as name=spec (repeatable)")
	flag.Parse()

	if err := run(*addr, *procs, *maxQProcs, *cacheSize, *dynamic, *preload, *frontier, graphs, gens); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-serve:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated name=value flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func run(addr string, procs, maxQProcs, cacheSize int, dynamic bool, preload, frontier string, graphs, gens []string) error {
	mode, err := core.ParseFrontierMode(frontier)
	if err != nil {
		return fmt.Errorf("-frontier: %w", err)
	}
	reg := service.NewRegistry(procs, dynamic)
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-graph %q: want name=path", spec)
		}
		reg.RegisterFile(name, path)
	}
	for _, spec := range gens {
		name, genSpec, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-gen %q: want name=spec", spec)
		}
		if err := reg.RegisterSpec(name, genSpec); err != nil {
			return fmt.Errorf("-gen %q: %w", spec, err)
		}
	}

	eng := service.NewEngine(reg, service.Config{
		ProcBudget:       procs,
		MaxProcsPerQuery: maxQProcs,
		CacheSize:        cacheSize,
		DefaultFrontier:  mode,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if preload != "" {
		for _, name := range strings.Split(preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			g, err := reg.Get(ctx, name)
			if err != nil {
				return fmt.Errorf("preload %q: %w", name, err)
			}
			log.Printf("preloaded %q: n=%d m=%d in %v", name, g.NumVertices(), g.NumEdges(), time.Since(start))
		}
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewServer(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("lgc-serve listening on %s (%d graphs registered, proc budget %d)",
			addr, len(reg.List()), eng.Stats().ProcBudget)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
