// Command lgc-serve runs the parcluster query service: a long-lived HTTP
// daemon that loads each graph once and answers many local-clustering
// queries against it — the paper's interactive-analyst workload (§1) as a
// shared service instead of a one-shot CLI.
//
// Graphs are registered at startup from files (-graph) or generator specs
// (-gen), and by default any generator spec or Table 2 stand-in name can
// also be queried directly (-dynamic); graphs load lazily on first query,
// concurrent loads are deduplicated, and results are cached in an LRU.
//
// Usage:
//
//	lgc-serve -addr :8080 -gen web=caveman:cliques=64,k=16 -graph lj=soc-lj.bin
//	curl -s localhost:8080/v1/cluster -d '{"graph":"web","algo":"prnibble","seeds":[0,16,32]}'
//	curl -s localhost:8080/v1/ncp -d '{"graph":"web","seeds":50,"envelope":true}'
//	curl -s localhost:8080/v1/graphs
//	curl -s localhost:8080/v1/stats
//
// Endpoints: POST /v1/cluster, POST /v1/ncp, POST /v1/graphs/{name}/edges,
// GET /v1/graphs, GET /v1/stats, GET /v1/trace, GET /v1/trace/{id},
// GET /metrics (Prometheus text exposition), GET /healthz, GET /debug/vars
// (expvar).
//
// Graphs are live: POST /v1/graphs/{name}/edges applies an atomic batch of
// edge inserts/deletes (optionally growing the vertex universe) and advances
// the graph's epoch. Queries pin the epoch current at admission and run
// against that immutable snapshot to completion; a background compactor
// folds accumulated deltas into fresh base CSRs every -compact-interval, or
// as soon as a graph's pending-delta count crosses -max-delta-edges.
//
// Durability: with -wal-dir set, every graph gets a per-graph write-ahead
// log under that directory — each accepted ingest batch is committed (and,
// under the default -wal-fsync always, fsynced) before its epoch becomes
// visible, a restart with the same -wal-dir replays the log to the exact
// pre-crash epoch, and each background compaction persists a checkpoint
// that truncates the replayed prefix. -wal-fsync accepts "always", "never",
// or a flush interval ("100ms"); -wal-segment-bytes sets the segment
// rotation threshold.
//
// Observability: every response carries X-Request-Id, work requests are
// traced into a bounded ring served at /v1/trace (capacity set by
// -trace-ring), requests slower than -slow-query are logged at Warn
// (-log-requests logs all of them), and -pprof-addr starts a separate
// net/http/pprof listener kept off the service port.
//
// The -frontier flag sets the server-wide default frontier-representation
// mode for diffusions ("auto", "sparse" or "dense"; auto switches per
// iteration via Ligra's direction heuristic). Requests can override it per
// query with params.frontier, and GET /v1/stats reports how many diffusions
// ran under each mode. Results are identical in every mode.
//
// Scheduling: every request passes through the class/deadline scheduler
// (internal/sched). -class-weights sets the per-class grant weights,
// -default-deadline the deadline applied to requests that carry none,
// -max-queue the per-class admission bound (excess requests get 429 +
// Retry-After). On SIGTERM/SIGINT the server drains gracefully: admission
// stops (new requests get 503, /healthz flips to draining), in-flight
// queries and streams finish up to -drain-timeout, then the listener shuts
// down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"parcluster/internal/core"
	"parcluster/internal/graph"
	"parcluster/internal/sched"
	"parcluster/internal/service"
	"parcluster/internal/wal"
)

// serveConfig carries the parsed flag set into run.
type serveConfig struct {
	addr            string
	procs           int
	maxQProcs       int
	cacheSize       int
	batchLanes      int
	dynamic         bool
	preload         string
	frontier        string
	classWeights    string
	defaultDeadline time.Duration
	maxQueue        int
	drainTimeout    time.Duration
	compactInterval time.Duration
	maxDeltaEdges   int
	walDir          string
	walFsync        string
	walSegmentBytes int64
	slowQuery       time.Duration
	pprofAddr       string
	traceRing       int
	logRequests     bool
	graphFormat     string
	graphs, gens    []string
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.procs, "procs", 0, "total worker budget shared by all queries (0 = all cores)")
	flag.IntVar(&cfg.maxQProcs, "max-query-procs", 0, "per-query worker clamp (0 = the full budget)")
	flag.IntVar(&cfg.cacheSize, "cache", 1024, "result cache capacity in entries (negative = disable)")
	flag.IntVar(&cfg.batchLanes, "batch-lanes", 0, "coalesce up to this many same-params diffusions into one bit-parallel traversal (0 or 1 = off, max 64)")
	flag.BoolVar(&cfg.dynamic, "dynamic", true, "allow generator specs as graph names in queries (capped at 64 distinct specs)")
	flag.StringVar(&cfg.preload, "preload", "", "comma-separated graph names to load before serving")
	flag.StringVar(&cfg.frontier, "frontier", "auto", "default frontier representation: auto, sparse, dense (requests may override)")
	flag.StringVar(&cfg.classWeights, "class-weights", "", "scheduler class weights as interactive=16,batch=4,background=1 (partial overrides allowed)")
	flag.DurationVar(&cfg.defaultDeadline, "default-deadline", 0, "deadline applied to requests without deadline_ms (0 = none)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "per-class admitted-request bound before 429s (0 = 256, negative = unbounded)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight work after SIGTERM")
	flag.DurationVar(&cfg.compactInterval, "compact-interval", 0, "how often the background compactor folds ingested deltas into base CSRs (0 = 30s, negative = disable)")
	flag.IntVar(&cfg.maxDeltaEdges, "max-delta-edges", 0, "pending-delta count that kicks an early compaction (0 = 65536, negative = timer-only)")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "root directory for per-graph ingest write-ahead logs (empty = durability off)")
	flag.StringVar(&cfg.walFsync, "wal-fsync", "always", "WAL fsync policy: always, never, or a flush interval like 100ms")
	flag.Int64Var(&cfg.walSegmentBytes, "wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 64 MiB)")
	flag.DurationVar(&cfg.slowQuery, "slow-query", time.Second, "log requests at Warn when they take at least this long (0 = never)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0, "finished-trace ring capacity behind /v1/trace (0 = 256, negative = disable tracing)")
	flag.BoolVar(&cfg.logRequests, "log-requests", false, "log every request, not just slow and failed ones")
	var graphs, gens multiFlag
	flag.StringVar(&cfg.graphFormat, "graph-format", "", "on-disk format of -graph files: auto, adj, bin, edges, lgz (default: from extension)")
	flag.Var(&graphs, "graph", "register a graph file as name=path (repeatable)")
	flag.Var(&gens, "gen", "register a generator spec as name=spec (repeatable)")
	flag.Parse()
	cfg.graphs, cfg.gens = graphs, gens

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lgc-serve:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated name=value flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// parseClassWeights parses "interactive=16,batch=4,background=1" (any
// subset; omitted classes keep their defaults, returned as 0).
func parseClassWeights(s string) ([sched.NumClasses]int, error) {
	var w [sched.NumClasses]int
	if s == "" {
		return w, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("%q: want class=weight", part)
		}
		cls, err := sched.ParseClass(strings.TrimSpace(name))
		if err != nil || strings.TrimSpace(name) == "" {
			return w, fmt.Errorf("%q: unknown class (want interactive, batch or background)", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 1 {
			return w, fmt.Errorf("%q: weight must be a positive integer", part)
		}
		w[cls] = n
	}
	return w, nil
}

func run(cfg serveConfig) error {
	addr, procs, maxQProcs, cacheSize := cfg.addr, cfg.procs, cfg.maxQProcs, cfg.cacheSize
	dynamic, preload, frontier, graphs, gens := cfg.dynamic, cfg.preload, cfg.frontier, cfg.graphs, cfg.gens
	mode, err := core.ParseFrontierMode(frontier)
	if err != nil {
		return fmt.Errorf("-frontier: %w", err)
	}
	weights, err := parseClassWeights(cfg.classWeights)
	if err != nil {
		return fmt.Errorf("-class-weights: %w", err)
	}
	reg := service.NewRegistry(procs, dynamic)
	if cfg.walDir != "" {
		policy, interval, err := wal.ParseSyncPolicy(cfg.walFsync)
		if err != nil {
			return fmt.Errorf("-wal-fsync: %w", err)
		}
		if err := reg.EnableWAL(service.WALConfig{
			Dir:          cfg.walDir,
			SegmentBytes: cfg.walSegmentBytes,
			Policy:       policy,
			Interval:     interval,
		}); err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		// Flush and close the logs after the engine (deferred below, so it
		// runs first) has stopped the compactor and drained appliers.
		defer func() {
			if err := reg.Close(); err != nil {
				log.Printf("closing WALs: %v", err)
			}
		}()
	}
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-graph %q: want name=path", spec)
		}
		reg.RegisterFileFormat(name, path, cfg.graphFormat)
	}
	for _, spec := range gens {
		name, genSpec, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-gen %q: want name=spec", spec)
		}
		if err := reg.RegisterSpec(name, genSpec); err != nil {
			return fmt.Errorf("-gen %q: %w", spec, err)
		}
	}

	eng := service.NewEngine(reg, service.Config{
		ProcBudget:       procs,
		MaxProcsPerQuery: maxQProcs,
		CacheSize:        cacheSize,
		BatchLanes:       cfg.batchLanes,
		DefaultFrontier:  mode,
		ClassWeights:     weights,
		MaxQueue:         cfg.maxQueue,
		DefaultDeadline:  cfg.defaultDeadline,
		TraceRing:        cfg.traceRing,
		CompactInterval:  cfg.compactInterval,
		MaxDeltaEdges:    cfg.maxDeltaEdges,
		OnDeadlineMiss: func(class, graph, stage string) {
			slog.Warn("scheduler deadline miss",
				"class", class, "graph", graph, "stage", stage)
		},
	})

	defer eng.Close() // stop the background compactor on every exit path

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if preload != "" {
		for _, name := range strings.Split(preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			g, err := reg.Get(ctx, name)
			if err != nil {
				return fmt.Errorf("preload %q: %w", name, err)
			}
			log.Printf("preloaded %q: n=%d m=%d format=%s in %v",
				name, g.NumVertices(), g.NumEdges(), graph.Format(g), time.Since(start))
		}
	}

	handler := service.NewServer(eng)
	handler.SlowQuery = cfg.slowQuery
	if cfg.logRequests {
		handler.Logger = slog.Default()
	}
	if cfg.pprofAddr != "" {
		// Profiling stays on its own listener so the service port never
		// exposes pprof and the service mux stays free of debug routes.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("lgc-serve listening on %s (%d graphs registered, proc budget %d)",
			addr, len(reg.List()), eng.Stats().ProcBudget)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: stop admitting (new requests 503, healthz flips
		// to draining for the load balancer), let admitted queries and
		// streams finish up to the drain budget, then close the listener.
		log.Printf("draining (budget %s)", cfg.drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancelDrain()
		if err := handler.Drain(drainCtx); err != nil {
			// Budget exhausted with requests still in flight: hard-close.
			log.Printf("drain timed out with requests still in flight; forcing shutdown")
			srv.Close()
			<-errc
			return fmt.Errorf("shutdown forced after %s drain timeout", cfg.drainTimeout)
		}
		// Every admitted request has finished; closing the listener and its
		// idle connections is immediate.
		log.Printf("drained; shutting down")
		if err := srv.Shutdown(context.Background()); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
